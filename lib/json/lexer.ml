type position = { line : int; col : int; offset : int }

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | String of string
  | Nat of int
  | Neg_int of int
  | Float of float
  | True
  | False
  | Null
  | Eof

exception Error of position * string

(* The resumable feed core.  One [t] serves both modes:

   - one-shot ([create]): the whole input is the window and the lexer
     is born closed, so every scan below behaves exactly like the
     historical string lexer — no [`Await] is ever produced;
   - feed ([create_feed]): bytes arrive in chunks via [feed].  A scan
     that runs off the window while the lexer is still open raises the
     internal [Need_input]; the pull entry points roll the cursor back
     to the token start and report [`Await], and the next attempt
     rescans the token from its first byte once more input is present.
     The retained state across a chunk boundary is therefore exactly
     the pending token's bytes (partial escapes, a lone high surrogate,
     an unterminated number, split UTF-8 sequences — all of it), which
     is what makes a token split at any byte offset lex identically to
     the one-shot path: the same code scans the same byte run either
     way.

   The window is compacted on [feed]: everything before the cursor has
   been consumed (an [`Await] rolls the cursor back first), so memory
   follows the largest in-flight token plus one chunk, never the
   stream. *)
type t = {
  mutable buf : Bytes.t;  (* window [base, base + len) of the input *)
  mutable base : int;  (* global byte offset of buf.[0] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable pos : int;  (* global cursor *)
  mutable line : int;
  mutable bol : int;  (* global offset of the beginning of the current line *)
  mutable closed : bool;
  mutable lookahead : (position * token) option;
  refill : (t -> unit) option;
  scratch : Buffer.t;  (* shared decode buffer for string literals *)
}

(* Internal: the window ran dry mid-scan and the lexer is still open.
   Never escapes the pull entry points. *)
exception Need_input

let create input =
  (* The one-shot window aliases the input string without copying:
     the buffer is only ever written by [feed], which a closed lexer
     rejects. *)
  { buf = Bytes.unsafe_of_string input;
    base = 0;
    len = String.length input;
    pos = 0;
    line = 1;
    bol = 0;
    closed = true;
    lookahead = None;
    refill = None;
    scratch = Buffer.create 64 }

let create_feed ?refill () =
  { buf = Bytes.create 256;
    base = 0;
    len = 0;
    pos = 0;
    line = 1;
    bol = 0;
    closed = false;
    lookahead = None;
    refill;
    scratch = Buffer.create 64 }

(* global offset one past the last byte currently in the window *)
let limit lx = lx.base + lx.len
let get lx i = Bytes.get lx.buf (i - lx.base)

let position lx = { line = lx.line; col = lx.pos - lx.bol + 1; offset = lx.pos }

let error lx fmt =
  Format.kasprintf (fun s -> raise (Error (position lx, s))) fmt

(* "Is the cursor at end of input?" is unanswerable in feed mode until
   [close]: with the window dry and the stream open the scan must
   suspend, which is exactly the [Need_input] raise — every EOF-probing
   call site below inherits resumability from this one function. *)
let is_eof lx =
  if lx.pos < limit lx then false
  else if lx.closed then true
  else raise Need_input

let cur lx = get lx lx.pos

let advance lx =
  if not (is_eof lx) then begin
    if cur lx = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let rec skip_ws lx =
  if not (is_eof lx) then
    match cur lx with
    | ' ' | '\t' | '\n' | '\r' ->
      advance lx;
      skip_ws lx
    | _ -> ()

let expect_word lx word token =
  let n = String.length word in
  (* fewer than [n] bytes in an open window could still complete the
     word; fewer in a closed one (or a mismatch) is the same error the
     one-shot lexer reports on the full input *)
  if lx.pos + n > limit lx && not lx.closed then raise Need_input;
  if
    lx.pos + n <= limit lx
    && Bytes.sub_string lx.buf (lx.pos - lx.base) n = word
  then begin
    for _ = 1 to n do
      advance lx
    done;
    token
  end
  else error lx "expected literal %S" word

let hex_digit lx c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error lx "invalid hex digit %C in \\u escape" c

let read_u16 lx =
  let code = ref 0 in
  for _ = 1 to 4 do
    if is_eof lx then error lx "unterminated \\u escape";
    code := (!code * 16) + hex_digit lx (cur lx);
    advance lx
  done;
  !code

(* Encode a unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* [decode = false] validates the literal (escapes, surrogate pairing,
   control characters) without materializing its contents — the
   streaming validator's skip path and anything else that discards the
   value use it to avoid the decode work. *)
let read_string ?(decode = true) lx =
  advance lx (* opening quote *);
  let lim = limit lx in
  (* Plain-segment fast path: most literals contain no escapes, so scan
     for the closing quote with direct index arithmetic and cut a single
     substring.  String bodies cannot contain raw newlines (control
     characters are rejected), so line accounting is unaffected. *)
  let i = ref lx.pos in
  while
    !i < lim
    &&
    let c = get lx !i in
    c <> '"' && c <> '\\' && Char.code c >= 0x20
  do
    incr i
  done;
  if !i < lim && get lx !i = '"' then begin
    let s =
      if decode then Bytes.sub_string lx.buf (lx.pos - lx.base) (!i - lx.pos)
      else ""
    in
    lx.pos <- !i + 1;
    s
  end
  else begin
    (* an escape, a control character or the window's edge ahead:
       general path, decoding into the lexer's shared scratch buffer
       (one allocation per lexer, not per literal) *)
    let buf = lx.scratch in
    Buffer.clear buf;
    if decode then
      Buffer.add_subbytes buf lx.buf (lx.pos - lx.base) (!i - lx.pos);
    lx.pos <- !i;
    let rec go () =
      if is_eof lx then error lx "unterminated string literal";
      match cur lx with
      | '"' ->
        advance lx;
        if decode then Buffer.contents buf else ""
      | '\\' ->
        advance lx;
        if is_eof lx then error lx "unterminated escape sequence";
        let c = cur lx in
        advance lx;
        let put ch = if decode then Buffer.add_char buf ch in
        (match c with
        | '"' -> put '"'
        | '\\' -> put '\\'
        | '/' -> put '/'
        | 'b' -> put '\b'
        | 'f' -> put '\012'
        | 'n' -> put '\n'
        | 'r' -> put '\r'
        | 't' -> put '\t'
        | 'u' ->
          let hi = read_u16 lx in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* high surrogate: a \uXXXX low surrogate must follow *)
            if is_eof lx || cur lx <> '\\' then
              error lx "high surrogate not followed by \\u escape";
            if lx.pos + 1 >= limit lx && not lx.closed then raise Need_input;
            if lx.pos + 1 >= limit lx || get lx (lx.pos + 1) <> 'u' then
              error lx "high surrogate not followed by \\u escape";
            advance lx;
            advance lx;
            let lo = read_u16 lx in
            if lo < 0xDC00 || lo > 0xDFFF then
              error lx "invalid low surrogate %04x" lo;
            if decode then
              add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if hi >= 0xDC00 && hi <= 0xDFFF then
            error lx "unpaired low surrogate %04x" hi
          else if decode then add_utf8 buf hi
        | c -> error lx "invalid escape character %C" c);
        go ()
      | c when Char.code c < 0x20 ->
        error lx "unescaped control character %#x in string" (Char.code c)
      | c ->
        if decode then Buffer.add_char buf c;
        advance lx;
        go ()
    in
    go ()
  end

let read_number lx =
  let start = lx.pos in
  if cur lx = '-' then advance lx;
  if is_eof lx then error lx "truncated number";
  (match cur lx with
  | '0' -> advance lx
  | '1' .. '9' ->
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  | c -> error lx "invalid number start %C" c);
  let is_float = ref false in
  if (not (is_eof lx)) && cur lx = '.' then begin
    is_float := true;
    advance lx;
    if is_eof lx || not (cur lx >= '0' && cur lx <= '9') then
      error lx "missing digits after decimal point";
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  end;
  if (not (is_eof lx)) && (cur lx = 'e' || cur lx = 'E') then begin
    is_float := true;
    advance lx;
    if (not (is_eof lx)) && (cur lx = '+' || cur lx = '-') then advance lx;
    if is_eof lx || not (cur lx >= '0' && cur lx <= '9') then
      error lx "missing exponent digits";
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  end;
  let text = Bytes.sub_string lx.buf (start - lx.base) (lx.pos - start) in
  if !is_float then begin
    let f = float_of_string text in
    (* [1e999] overflows to [infinity] (and [-1e999] to its negative),
       which nothing downstream can represent or re-serialize as JSON —
       reject it here, uniformly across the tree, stream and schema
       paths, like an integer literal out of range *)
    if Float.is_finite f then Float f
    else error lx "number literal %s out of range" text
  end
  else
    match int_of_string_opt text with
    (* [-0] is signed, not a natural: classify by the written sign, so
       the model layer (naturals only) rejects it like any negative *)
    | Some 0 when text.[0] = '-' -> Neg_int 0
    | Some n when n >= 0 -> Nat n
    | Some n -> Neg_int n
    | None -> error lx "integer literal %s out of range" text

let next_token ?(decode_strings = true) lx =
  skip_ws lx;
  let pos = position lx in
  if is_eof lx then (pos, Eof)
  else
    let tok =
      match cur lx with
      | '{' ->
        advance lx;
        Lbrace
      | '}' ->
        advance lx;
        Rbrace
      | '[' ->
        advance lx;
        Lbracket
      | ']' ->
        advance lx;
        Rbracket
      | ':' ->
        advance lx;
        Colon
      | ',' ->
        advance lx;
        Comma
      | '"' -> String (read_string ~decode:decode_strings lx)
      | 't' -> expect_word lx "true" True
      | 'f' -> expect_word lx "false" False
      | 'n' -> expect_word lx "null" Null
      | '-' | '0' .. '9' -> read_number lx
      | c -> error lx "unexpected character %C" c
    in
    (pos, tok)

(* Scan one token, rolling the cursor back to the token start when the
   window ran dry: after more bytes are fed the retry rescans the token
   from its first byte, so its full byte run is lexed exactly as the
   one-shot path lexes it. *)
let scan ?decode_strings lx =
  let pos = lx.pos and line = lx.line and bol = lx.bol in
  match next_token ?decode_strings lx with
  | tok -> Some tok
  | exception Need_input ->
    lx.pos <- pos;
    lx.line <- line;
    lx.bol <- bol;
    None

let feed lx bytes off n =
  if lx.closed then invalid_arg "Jsont.Lexer.feed: the lexer is closed";
  if off < 0 || n < 0 || off + n > Bytes.length bytes then
    invalid_arg "Jsont.Lexer.feed: invalid byte range";
  (* compact: everything before the cursor has been consumed (a
     suspended scan rolled the cursor back to its token start) *)
  let consumed = lx.pos - lx.base in
  if consumed > 0 then begin
    Bytes.blit lx.buf consumed lx.buf 0 (lx.len - consumed);
    lx.base <- lx.pos;
    lx.len <- lx.len - consumed
  end;
  let need = lx.len + n in
  if need > Bytes.length lx.buf then begin
    let cap = ref (max 256 (Bytes.length lx.buf)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit lx.buf 0 grown 0 lx.len;
    lx.buf <- grown
  end;
  Bytes.blit bytes off lx.buf lx.len n;
  lx.len <- need

let feed_string lx s = feed lx (Bytes.unsafe_of_string s) 0 (String.length s)

let close lx = lx.closed <- true

let pull lx =
  match lx.lookahead with
  | Some (_, Eof) ->
    lx.lookahead <- None;
    `End
  | Some tok ->
    lx.lookahead <- None;
    `Token tok
  | None -> (
    match scan lx with
    | None -> `Await
    | Some (_, Eof) -> `End
    | Some tok -> `Token tok)

let rec next_with ~decode lx =
  match lx.lookahead with
  | Some tok ->
    lx.lookahead <- None;
    tok
  | None -> (
    match scan ~decode_strings:decode lx with
    | Some tok -> tok
    | None ->
      (match lx.refill with
      | None ->
        invalid_arg
          "Jsont.Lexer: token stream awaiting input (feed more bytes or close)"
      | Some f ->
        let lim = limit lx in
        f lx;
        if limit lx = lim && not lx.closed then
          invalid_arg "Jsont.Lexer: refill fed no bytes and did not close");
      next_with ~decode lx)

let next lx = next_with ~decode:true lx
let next_skip lx = next_with ~decode:false lx

let peek lx =
  match lx.lookahead with
  | Some tok -> tok
  | None ->
    let tok = next lx in
    lx.lookahead <- Some tok;
    tok

let offset lx =
  match lx.lookahead with
  | Some (pos, _) -> pos.offset
  | None -> lx.pos

let remaining lx = limit lx - offset lx

let pp_token fmt = function
  | Lbrace -> Format.pp_print_string fmt "'{'"
  | Rbrace -> Format.pp_print_string fmt "'}'"
  | Lbracket -> Format.pp_print_string fmt "'['"
  | Rbracket -> Format.pp_print_string fmt "']'"
  | Colon -> Format.pp_print_string fmt "':'"
  | Comma -> Format.pp_print_string fmt "','"
  | String s -> Format.fprintf fmt "string %S" s
  | Nat n -> Format.fprintf fmt "number %d" n
  | Neg_int n -> Format.fprintf fmt "number %d" n
  | Float f -> Format.fprintf fmt "number %g" f
  | True -> Format.pp_print_string fmt "'true'"
  | False -> Format.pp_print_string fmt "'false'"
  | Null -> Format.pp_print_string fmt "'null'"
  | Eof -> Format.pp_print_string fmt "end of input"

let tokenize input =
  let lx = create input in
  let rec go acc =
    let ((_, tok) as t) = next lx in
    if tok = Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []
