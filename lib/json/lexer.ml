type position = { line : int; col : int; offset : int }

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | String of string
  | Nat of int
  | Neg_int of int
  | Float of float
  | True
  | False
  | Null
  | Eof

exception Error of position * string

type t = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
  mutable lookahead : (position * token) option;
  scratch : Buffer.t;  (* shared decode buffer for string literals *)
}

let create input =
  { input; pos = 0; line = 1; bol = 0; lookahead = None;
    scratch = Buffer.create 64 }

let position lx = { line = lx.line; col = lx.pos - lx.bol + 1; offset = lx.pos }

let error lx fmt =
  Format.kasprintf (fun s -> raise (Error (position lx, s))) fmt

let is_eof lx = lx.pos >= String.length lx.input
let cur lx = lx.input.[lx.pos]

let advance lx =
  if not (is_eof lx) then begin
    if cur lx = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let rec skip_ws lx =
  if not (is_eof lx) then
    match cur lx with
    | ' ' | '\t' | '\n' | '\r' ->
      advance lx;
      skip_ws lx
    | _ -> ()

let expect_word lx word token =
  let n = String.length word in
  if
    lx.pos + n <= String.length lx.input
    && String.sub lx.input lx.pos n = word
  then begin
    for _ = 1 to n do
      advance lx
    done;
    token
  end
  else error lx "expected literal %S" word

let hex_digit lx c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error lx "invalid hex digit %C in \\u escape" c

let read_u16 lx =
  let code = ref 0 in
  for _ = 1 to 4 do
    if is_eof lx then error lx "unterminated \\u escape";
    code := (!code * 16) + hex_digit lx (cur lx);
    advance lx
  done;
  !code

(* Encode a unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* [decode = false] validates the literal (escapes, surrogate pairing,
   control characters) without materializing its contents — the
   streaming validator's skip path and anything else that discards the
   value use it to avoid the decode work. *)
let read_string ?(decode = true) lx =
  advance lx (* opening quote *);
  let input = lx.input in
  let n = String.length input in
  (* Plain-segment fast path: most literals contain no escapes, so scan
     for the closing quote with direct index arithmetic and cut a single
     substring.  String bodies cannot contain raw newlines (control
     characters are rejected), so line accounting is unaffected. *)
  let i = ref lx.pos in
  while
    !i < n
    &&
    let c = input.[!i] in
    c <> '"' && c <> '\\' && Char.code c >= 0x20
  do
    incr i
  done;
  if !i < n && input.[!i] = '"' then begin
    let s = if decode then String.sub input lx.pos (!i - lx.pos) else "" in
    lx.pos <- !i + 1;
    s
  end
  else begin
    (* an escape, a control character or EOF ahead: general path,
       decoding into the lexer's shared scratch buffer (one allocation
       per lexer, not per literal) *)
    let buf = lx.scratch in
    Buffer.clear buf;
    if decode then Buffer.add_substring buf input lx.pos (!i - lx.pos);
    lx.pos <- !i;
    let rec go () =
      if is_eof lx then error lx "unterminated string literal";
      match cur lx with
      | '"' ->
        advance lx;
        if decode then Buffer.contents buf else ""
      | '\\' ->
        advance lx;
        if is_eof lx then error lx "unterminated escape sequence";
        let c = cur lx in
        advance lx;
        let put ch = if decode then Buffer.add_char buf ch in
        (match c with
        | '"' -> put '"'
        | '\\' -> put '\\'
        | '/' -> put '/'
        | 'b' -> put '\b'
        | 'f' -> put '\012'
        | 'n' -> put '\n'
        | 'r' -> put '\r'
        | 't' -> put '\t'
        | 'u' ->
          let hi = read_u16 lx in
          if hi >= 0xD800 && hi <= 0xDBFF then begin
            (* high surrogate: a \uXXXX low surrogate must follow *)
            if
              is_eof lx || cur lx <> '\\'
              || lx.pos + 1 >= String.length lx.input
              || lx.input.[lx.pos + 1] <> 'u'
            then error lx "high surrogate not followed by \\u escape";
            advance lx;
            advance lx;
            let lo = read_u16 lx in
            if lo < 0xDC00 || lo > 0xDFFF then
              error lx "invalid low surrogate %04x" lo;
            if decode then
              add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if hi >= 0xDC00 && hi <= 0xDFFF then
            error lx "unpaired low surrogate %04x" hi
          else if decode then add_utf8 buf hi
        | c -> error lx "invalid escape character %C" c);
        go ()
      | c when Char.code c < 0x20 ->
        error lx "unescaped control character %#x in string" (Char.code c)
      | c ->
        if decode then Buffer.add_char buf c;
        advance lx;
        go ()
    in
    go ()
  end

let read_number lx =
  let start = lx.pos in
  if cur lx = '-' then advance lx;
  if is_eof lx then error lx "truncated number";
  (match cur lx with
  | '0' -> advance lx
  | '1' .. '9' ->
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  | c -> error lx "invalid number start %C" c);
  let is_float = ref false in
  if (not (is_eof lx)) && cur lx = '.' then begin
    is_float := true;
    advance lx;
    if is_eof lx || not (cur lx >= '0' && cur lx <= '9') then
      error lx "missing digits after decimal point";
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  end;
  if (not (is_eof lx)) && (cur lx = 'e' || cur lx = 'E') then begin
    is_float := true;
    advance lx;
    if (not (is_eof lx)) && (cur lx = '+' || cur lx = '-') then advance lx;
    if is_eof lx || not (cur lx >= '0' && cur lx <= '9') then
      error lx "missing exponent digits";
    while (not (is_eof lx)) && cur lx >= '0' && cur lx <= '9' do
      advance lx
    done
  end;
  let text = String.sub lx.input start (lx.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    (* [-0] is signed, not a natural: classify by the written sign, so
       the model layer (naturals only) rejects it like any negative *)
    | Some 0 when text.[0] = '-' -> Neg_int 0
    | Some n when n >= 0 -> Nat n
    | Some n -> Neg_int n
    | None -> error lx "integer literal %s out of range" text

let next_token ?(decode_strings = true) lx =
  skip_ws lx;
  let pos = position lx in
  if is_eof lx then (pos, Eof)
  else
    let tok =
      match cur lx with
      | '{' ->
        advance lx;
        Lbrace
      | '}' ->
        advance lx;
        Rbrace
      | '[' ->
        advance lx;
        Lbracket
      | ']' ->
        advance lx;
        Rbracket
      | ':' ->
        advance lx;
        Colon
      | ',' ->
        advance lx;
        Comma
      | '"' -> String (read_string ~decode:decode_strings lx)
      | 't' -> expect_word lx "true" True
      | 'f' -> expect_word lx "false" False
      | 'n' -> expect_word lx "null" Null
      | '-' | '0' .. '9' -> read_number lx
      | c -> error lx "unexpected character %C" c
    in
    (pos, tok)

let next lx =
  match lx.lookahead with
  | Some tok ->
    lx.lookahead <- None;
    tok
  | None -> next_token lx

let next_skip lx =
  match lx.lookahead with
  | Some tok ->
    lx.lookahead <- None;
    tok
  | None -> next_token ~decode_strings:false lx

let peek lx =
  match lx.lookahead with
  | Some tok -> tok
  | None ->
    let tok = next_token lx in
    lx.lookahead <- Some tok;
    tok

let offset lx =
  match lx.lookahead with
  | Some (pos, _) -> pos.offset
  | None -> lx.pos

let remaining lx = String.length lx.input - offset lx

let pp_token fmt = function
  | Lbrace -> Format.pp_print_string fmt "'{'"
  | Rbrace -> Format.pp_print_string fmt "'}'"
  | Lbracket -> Format.pp_print_string fmt "'['"
  | Rbracket -> Format.pp_print_string fmt "']'"
  | Colon -> Format.pp_print_string fmt "':'"
  | Comma -> Format.pp_print_string fmt "','"
  | String s -> Format.fprintf fmt "string %S" s
  | Nat n -> Format.fprintf fmt "number %d" n
  | Neg_int n -> Format.fprintf fmt "number %d" n
  | Float f -> Format.fprintf fmt "number %g" f
  | True -> Format.pp_print_string fmt "'true'"
  | False -> Format.pp_print_string fmt "'false'"
  | Null -> Format.pp_print_string fmt "'null'"
  | Eof -> Format.pp_print_string fmt "end of input"

let tokenize input =
  let lx = create input in
  let rec go acc =
    let ((_, tok) as t) = next lx in
    if tok = Eof then List.rev (t :: acc) else go (t :: acc)
  in
  go []
