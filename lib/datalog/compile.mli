(** The Proposition 1 translation: JNL formulas to datalog programs
    with stratified negation over the {!Edb} encoding.

    One unary predicate per subformula; paths inline into tree-shaped
    rule bodies (the "tree queries" of the proof); [Not] introduces
    stratified negation; [EQ(α,β)] uses the external [eq] relation,
    evaluated online exactly as the proof prescribes; [EQ(α,A)] uses an
    interned constant document.

    Fragment correspondences:
    - deterministic JNL → {e non-recursive monadic} programs (the class
      of the proof; check with {!Ast.is_monadic} / {!Ast.is_recursive});
    - [Star] → recursive rules with a binary reachability predicate
      (leaving the monadic class but staying stratified);
    - [Alt] / path unions → one rule per alternative (bodies multiply
      across compositions, mirroring the Theorem 2 blow-up). *)

val jnl : Edb.t -> Jlogic.Jnl.form -> Ast.program
(** Compile a formula against a tree's EDB (the EDB is needed to intern
    constant documents, key languages and index ranges). *)

val eval : Jsont.Tree.t -> Jlogic.Jnl.form -> (int list, string) result
(** End-to-end: encode the tree, compile, evaluate — the sorted set of
    nodes satisfying the formula.  Agrees with {!Jlogic.Jnl_eval.eval}
    (property-tested). *)
