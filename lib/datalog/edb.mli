(** The relational encoding of a JSON tree, after the remark before
    Proposition 8: one binary relation [key:w] per key word [w], one
    binary relation [idx:i] per array position, the unary node-kind
    partition, and the value predicates.

    Predicates provided over a tree [J]:

    - [node(x)] — every node;  [root(x)] — the root;
    - [obj(x)], [arr(x)], [str(x)], [int(x)] — the partition;
    - [key:w(x,y)] — the O relation restricted to key [w];
    - [idx:i(x,y)] — the A relation restricted to position [i];
    - [child(x,y)] — the union of both (for recursive axes);
    - [val:str:s(x)] / [val:int:n(x)] — atomic values;
    - materialized on demand: [keylang:<e>(x,y)] (O restricted to a
      regular key language) and [idxrange:<i>:<j>(x,y)] (A restricted
      to an interval);
    - external, evaluated on bound arguments only — the "online"
      comparisons of the Proposition 1 proof: [eq(x,y)] (subtree
      equality) and [eqdoc:<h>(x)] (equality to an interned constant
      document). *)

type t

val of_tree : Jsont.Tree.t -> t
val tree : t -> Jsont.Tree.t

val domain : t -> int
(** Number of nodes (constants range over [0 .. domain-1]). *)

val facts : t -> string -> int list list
(** Extension of a stored predicate; [[]] if absent. *)

val predicates : t -> string list
(** All stored predicate names. *)

val intern_doc : t -> Jsont.Value.t -> string
(** Register a constant document; returns the [eqdoc:…] external
    predicate name testing subtree equality against it. *)

val intern_key_lang : t -> Rexp.Syntax.t -> string
(** Materialize the O relation restricted to a key language; returns
    the stored predicate's name. *)

val intern_idx_range : t -> int -> int option -> string
(** Materialize the A relation restricted to an interval. *)

val intern_idx_neg : t -> int -> string
(** Materialize the A relation for a negative (from-the-end) index:
    [(n, child at position arity(n) + i)]. *)

val is_external : t -> string -> bool
(** [eq] and interned [eqdoc:…] predicates. *)

val eval_external : t -> string -> int list -> bool
(** Evaluate an external predicate on fully bound arguments. *)
