(** Datalog with stratified negation — the target formalism of the
    proof of Proposition 1, which evaluates JNL by translation to a
    (non-recursive, monadic) datalog program with stratified negation
    over a relational encoding of the JSON tree, "in the style of
    [Gottlob, Koch, Schulz; JACM'06] for XML trees".

    The engine itself is more general than the proof needs (it supports
    recursion and non-monadic IDB predicates, evaluated semi-naively by
    stratum): the deterministic JNL fragment compiles to the
    non-recursive monadic class of the proof, while the [Star]
    extension compiles to recursive rules — see {!Compile}. *)

type term =
  | Var of string
  | Const of int  (** constants are tree-node identifiers *)

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom  (** stratified: must not be mutually recursive *)

type rule = { head : atom; body : literal list }
(** Safety requirement (checked by the engine): every variable of the
    head and of every negated or external atom occurs in some positive,
    non-external body atom. *)

type program = { rules : rule list; goal : string }
(** [goal] names the predicate whose extension answers the query. *)

val v : string -> term
val c : int -> term
val atom : string -> term list -> atom
val ( <-- ) : atom -> literal list -> rule
(** Rule constructor: [head <-- body]. *)

val rule_vars : rule -> string list
val check_safety : rule -> (unit, string) result

val is_monadic : program -> bool
(** All IDB predicates unary (the class of the Proposition 1 proof). *)

val is_recursive : program -> bool
(** Some IDB predicate depends on itself (through any chain). *)

val idb_predicates : program -> string list
(** Predicates defined by some rule head. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_program : Format.formatter -> program -> unit
