(** Bottom-up evaluation of datalog with stratified negation.

    - {!stratify} computes the stratification (error on a cycle through
      negation — the same well-formedness discipline as recursive JSL's
      precedence graph, Section 5.3);
    - {!run} evaluates stratum by stratum, semi-naively (each rule
      fires only with at least one Δ-atom), over the {!Edb} relations
      and externals.

    Body literals are evaluated in an order chosen per binding state:
    stored atoms join left to right; negated and external atoms wait
    until their variables are bound (rules where that never happens are
    rejected as unsafe — the engine-level counterpart of
    {!Ast.check_safety}). *)

val stratify : Ast.program -> (string list list, string) result
(** IDB predicates grouped by stratum, lowest first. *)

val run : Edb.t -> Ast.program -> (int list list, string) result
(** The extension of the goal predicate. *)

val query_nodes : Edb.t -> Ast.program -> (int list, string) result
(** For a unary goal: the sorted node list. *)
