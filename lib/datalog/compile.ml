open Ast
module Jnl = Jlogic.Jnl

type state = {
  edb : Edb.t;
  mutable rules : rule list;
  mutable pred_count : int;
  mutable var_count : int;
  memo : (Jnl.form, string) Hashtbl.t;
}

let fresh_pred st prefix =
  let p = Printf.sprintf "%s%d" prefix st.pred_count in
  st.pred_count <- st.pred_count + 1;
  p

let fresh_var st =
  let x = Printf.sprintf "X%d" st.var_count in
  st.var_count <- st.var_count + 1;
  x

let add_rule st r = st.rules <- r :: st.rules

(* All ways a path can relate [x] to an end node: a list of
   (body literals, end variable).  [Seq] multiplies alternatives,
   [Star] introduces a recursive binary predicate. *)
let rec path_bodies st (p : Jnl.path) (x : string) : (literal list * string) list =
  match p with
  | Jnl.Self -> [ ([], x) ]
  | Jnl.Key w ->
    let y = fresh_var st in
    [ ([ Pos (atom ("key:" ^ w) [ v x; v y ]) ], y) ]
  | Jnl.Idx i ->
    let y = fresh_var st in
    let pred =
      if i >= 0 then "idx:" ^ string_of_int i else Edb.intern_idx_neg st.edb i
    in
    [ ([ Pos (atom pred [ v x; v y ]) ], y) ]
  | Jnl.Keys e ->
    let y = fresh_var st in
    [ ([ Pos (atom (Edb.intern_key_lang st.edb e) [ v x; v y ]) ], y) ]
  | Jnl.Range (i, j) ->
    let y = fresh_var st in
    [ ([ Pos (atom (Edb.intern_idx_range st.edb i j) [ v x; v y ]) ], y) ]
  | Jnl.Seq (a, b) ->
    List.concat_map
      (fun (body_a, mid) ->
        List.map
          (fun (body_b, last) -> (body_a @ body_b, last))
          (path_bodies st b mid))
      (path_bodies st a x)
  | Jnl.Alt (a, b) -> path_bodies st a x @ path_bodies st b x
  | Jnl.Test f ->
    let pf = compile_form st f in
    [ ([ Pos (atom pf [ v x ]) ], x) ]
  | Jnl.Star a ->
    (* reach(s, s) :- node(s).
       reach(s, e) :- reach(s, m), α(m, e).   (one rule per alternative) *)
    let reach = fresh_pred st "reach" in
    let s = fresh_var st and m = fresh_var st in
    add_rule st (atom reach [ v s; v s ] <-- [ Pos (atom "node" [ v s ]) ]);
    List.iter
      (fun (body, e) ->
        add_rule st
          (atom reach [ v s; v e ] <-- (Pos (atom reach [ v s; v m ]) :: body)))
      (path_bodies st a m);
    let y = fresh_var st in
    [ ([ Pos (atom reach [ v x; v y ]) ], y) ]

(* Each subformula becomes a unary predicate holding of its satisfying
   nodes. *)
and compile_form st (f : Jnl.form) : string =
  match Hashtbl.find_opt st.memo f with
  | Some p -> p
  | None ->
    let pred = fresh_pred st "p" in
    Hashtbl.add st.memo f pred;
    let x = fresh_var st in
    let head = atom pred [ v x ] in
    (match f with
    | Jnl.True -> add_rule st (head <-- [ Pos (atom "node" [ v x ]) ])
    | Jnl.Not g ->
      let pg = compile_form st g in
      add_rule st
        (head <-- [ Pos (atom "node" [ v x ]); Neg (atom pg [ v x ]) ])
    | Jnl.And (a, b) ->
      let pa = compile_form st a and pb = compile_form st b in
      add_rule st (head <-- [ Pos (atom pa [ v x ]); Pos (atom pb [ v x ]) ])
    | Jnl.Or (a, b) ->
      let pa = compile_form st a and pb = compile_form st b in
      add_rule st (head <-- [ Pos (atom pa [ v x ]) ]);
      add_rule st (head <-- [ Pos (atom pb [ v x ]) ])
    | Jnl.Exists p ->
      List.iter
        (fun (body, _) ->
          let body = if body = [] then [ Pos (atom "node" [ v x ]) ] else body in
          add_rule st (head <-- body))
        (path_bodies st p x)
    | Jnl.Eq_doc (p, doc) ->
      let eqdoc = Edb.intern_doc st.edb doc in
      List.iter
        (fun (body, y) ->
          let body =
            if body = [] then [ Pos (atom "node" [ v x ]) ] else body
          in
          add_rule st (head <-- (body @ [ Pos (atom eqdoc [ v y ]) ])))
        (path_bodies st p x)
    | Jnl.Eq_paths (a, b) ->
      List.iter
        (fun (body_a, ya) ->
          List.iter
            (fun (body_b, yb) ->
              let body = body_a @ body_b in
              let body =
                if body = [] then [ Pos (atom "node" [ v x ]) ] else body
              in
              add_rule st
                (head <-- (body @ [ Pos (atom "eq" [ v ya; v yb ]) ])))
            (path_bodies st b x))
        (path_bodies st a x));
    pred

let jnl edb f =
  let st =
    { edb; rules = []; pred_count = 0; var_count = 0; memo = Hashtbl.create 16 }
  in
  let goal = compile_form st f in
  { rules = List.rev st.rules; goal }

let eval tree f =
  let edb = Edb.of_tree tree in
  let program = jnl edb f in
  Engine.query_nodes edb program
