type term =
  | Var of string
  | Const of int

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom

type rule = { head : atom; body : literal list }
type program = { rules : rule list; goal : string }

let v name = Var name
let c n = Const n
let atom pred args = { pred; args }
let ( <-- ) head body = { head; body }

let atom_vars a =
  List.filter_map (function Var x -> Some x | Const _ -> None) a.args

let rule_vars r =
  List.sort_uniq String.compare
    (atom_vars r.head
    @ List.concat_map (function Pos a | Neg a -> atom_vars a) r.body)

(* External predicates are evaluated by callback and bind nothing; the
   engine tells us which ones those are at runtime, but for the static
   safety check we treat every positive atom as binding.  A stricter
   check with the extern set happens inside the engine. *)
let check_safety r =
  let bound =
    List.concat_map (function Pos a -> atom_vars a | Neg _ -> []) r.body
  in
  let need = atom_vars r.head @ List.concat_map (function Neg a -> atom_vars a | Pos _ -> []) r.body in
  match List.find_opt (fun x -> not (List.mem x bound)) need with
  | None -> Ok ()
  | Some x ->
    Error
      (Printf.sprintf "unsafe rule: variable %s of %s is not bound positively" x
         r.head.pred)

let idb_predicates p =
  List.sort_uniq String.compare (List.map (fun r -> r.head.pred) p.rules)

let is_monadic p =
  let idb = idb_predicates p in
  List.for_all
    (fun r ->
      (not (List.mem r.head.pred idb)) || List.length r.head.args <= 1)
    p.rules

let is_recursive p =
  let idb = idb_predicates p in
  (* dependency graph over IDB predicates *)
  let deps pred =
    List.concat_map
      (fun r ->
        if r.head.pred = pred then
          List.filter_map
            (function
              | (Pos a | Neg a) when List.mem a.pred idb -> Some a.pred
              | Pos _ | Neg _ -> None)
            r.body
        else [])
      p.rules
  in
  let rec reachable seen pred =
    if List.mem pred seen then seen
    else List.fold_left reachable (pred :: seen) (deps pred)
  in
  List.exists
    (fun pred -> List.exists (fun d -> List.mem pred (reachable [] d)) (deps pred))
    idb

let pp_term fmt = function
  | Var x -> Format.pp_print_string fmt x
  | Const n -> Format.pp_print_int fmt n

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp_term)
    a.args

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "not %a" pp_atom a

let pp_rule fmt r =
  Format.fprintf fmt "%a :- %a." pp_atom r.head
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_literal)
    r.body

let pp_program fmt p =
  Format.fprintf fmt "@[<v>%% goal: %s@,%a@]" p.goal
    (Format.pp_print_list pp_rule)
    p.rules
