module Tree = Jsont.Tree
module Value = Jsont.Value
module Jnl_step = Jlogic.Jnl_step

type t = {
  tr : Tree.t;
  stored : (string, int list list ref) Hashtbl.t;
  docs : (string, Tree.t) Hashtbl.t;  (* eqdoc:<h> -> constant tree *)
  mutable lang_count : int;
}

let add_fact t pred tuple =
  match Hashtbl.find_opt t.stored pred with
  | Some l -> l := tuple :: !l
  | None -> Hashtbl.add t.stored pred (ref [ tuple ])

let of_tree tr =
  let t = { tr; stored = Hashtbl.create 64; docs = Hashtbl.create 4; lang_count = 0 } in
  Seq.iter
    (fun n ->
      add_fact t "node" [ n ];
      (match Tree.kind tr n with
      | Tree.Kobj -> add_fact t "obj" [ n ]
      | Tree.Karr -> add_fact t "arr" [ n ]
      | Tree.Kstr s ->
        add_fact t "str" [ n ];
        add_fact t ("val:str:" ^ s) [ n ]
      | Tree.Kint i ->
        add_fact t "int" [ n ];
        add_fact t ("val:int:" ^ string_of_int i) [ n ]);
      List.iter
        (fun (k, ch) ->
          add_fact t ("key:" ^ k) [ n; ch ];
          add_fact t "child" [ n; ch ])
        (Tree.obj_children tr n);
      Array.iteri
        (fun i ch ->
          add_fact t ("idx:" ^ string_of_int i) [ n; ch ];
          add_fact t "child" [ n; ch ])
        (Tree.arr_children tr n))
    (Tree.nodes tr);
  add_fact t "root" [ Tree.root ];
  t

let tree t = t.tr
let domain t = Tree.node_count t.tr

let facts t pred =
  match Hashtbl.find_opt t.stored pred with
  | Some l -> !l
  | None -> []

let predicates t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.stored []
  |> List.sort String.compare

let intern_doc t v =
  let vt = Tree.of_value v in
  let name = Printf.sprintf "eqdoc:%x" (Value.hash v) in
  if not (Hashtbl.mem t.docs name) then Hashtbl.add t.docs name vt;
  name

let intern_key_lang t e =
  let name = Printf.sprintf "keylang:%d" t.lang_count in
  t.lang_count <- t.lang_count + 1;
  let lang = Rexp.Lang.of_syntax e in
  Seq.iter
    (fun n ->
      List.iter
        (fun (k, ch) ->
          if Rexp.Lang.matches lang k then add_fact t name [ n; ch ])
        (Tree.obj_children t.tr n))
    (Tree.nodes t.tr);
  (* ensure the predicate exists even when empty *)
  if not (Hashtbl.mem t.stored name) then Hashtbl.add t.stored name (ref []);
  name

let intern_idx_range t i j =
  let name =
    Printf.sprintf "idxrange:%d:%s" i
      (match j with None -> "inf" | Some j -> string_of_int j)
  in
  if not (Hashtbl.mem t.stored name) then begin
    Hashtbl.add t.stored name (ref []);
    Seq.iter
      (fun n ->
        let kids = Tree.arr_children t.tr n in
        let len = Array.length kids in
        Array.iteri
          (fun p ch ->
            if Jnl_step.range_matches ~len ~pos:p i j then
              add_fact t name [ n; ch ])
          kids)
      (Tree.nodes t.tr)
  end;
  name

let intern_idx_neg t i =
  let name = Printf.sprintf "idxneg:%d" (-i) in
  if not (Hashtbl.mem t.stored name) then begin
    Hashtbl.add t.stored name (ref []);
    Seq.iter
      (fun n ->
        let kids = Tree.arr_children t.tr n in
        match Jnl_step.norm_idx ~len:(Array.length kids) i with
        | Some p -> add_fact t name [ n; kids.(p) ]
        | None -> ())
      (Tree.nodes t.tr)
  end;
  name

let is_external t pred = pred = "eq" || Hashtbl.mem t.docs pred

let eval_external t pred args =
  match (pred, args) with
  | "eq", [ a; b ] -> Tree.equal_subtrees t.tr a b
  | _, [ a ] when Hashtbl.mem t.docs pred ->
    let vt = Hashtbl.find t.docs pred in
    Tree.equal_across t.tr a vt Tree.root
  | _ ->
    invalid_arg
      (Printf.sprintf "Edb.eval_external: %s/%d" pred (List.length args))
