open Ast

(* ---- relations ------------------------------------------------------------ *)

(* A set of tuples with a first-argument index for the common
   bound-first joins of tree navigation. *)
module Relation = struct
  type t = {
    all : (int list, unit) Hashtbl.t;
    by_first : (int, int list list ref) Hashtbl.t;
  }

  let create () = { all = Hashtbl.create 16; by_first = Hashtbl.create 16 }

  let mem t tuple = Hashtbl.mem t.all tuple

  let add t tuple =
    if Hashtbl.mem t.all tuple then false
    else begin
      Hashtbl.add t.all tuple ();
      (match tuple with
      | first :: _ -> (
        match Hashtbl.find_opt t.by_first first with
        | Some l -> l := tuple :: !l
        | None -> Hashtbl.add t.by_first first (ref [ tuple ]))
      | [] -> ());
      true
    end

  let iter_matching t (pattern : int option list) f =
    let matches tuple =
      List.length tuple = List.length pattern
      && List.for_all2
           (fun v p -> match p with None -> true | Some c -> v = c)
           tuple pattern
    in
    match pattern with
    | Some first :: _ -> (
      match Hashtbl.find_opt t.by_first first with
      | Some l -> List.iter (fun tu -> if matches tu then f tu) !l
      | None -> ())
    | _ -> Hashtbl.iter (fun tu () -> if matches tu then f tu) t.all

  let cardinal t = Hashtbl.length t.all
  let to_list t = Hashtbl.fold (fun tu () acc -> tu :: acc) t.all []
end

(* ---- stratification -------------------------------------------------------- *)

let stratify (p : program) =
  let idb = idb_predicates p in
  let stratum = Hashtbl.create 16 in
  List.iter (fun pred -> Hashtbl.replace stratum pred 0) idb;
  let get pred = Option.value ~default:0 (Hashtbl.find_opt stratum pred) in
  let changed = ref true in
  let iterations = ref 0 in
  let bound = List.length idb + 1 in
  (try
     while !changed do
       changed := false;
       incr iterations;
       if !iterations > bound + 1 then raise Exit;
       List.iter
         (fun r ->
           let h = r.head.pred in
           List.iter
             (fun lit ->
               let required =
                 match lit with
                 | Pos a when List.mem a.pred idb -> Some (get a.pred)
                 | Neg a when List.mem a.pred idb -> Some (get a.pred + 1)
                 | Pos _ | Neg _ -> None
               in
               match required with
               | Some s when s > get h ->
                 Hashtbl.replace stratum h s;
                 changed := true
               | _ -> ())
             r.body)
         p.rules
     done
   with Exit -> ());
  if !iterations > bound then
    Error "no stratification: recursion through negation"
  else begin
    let max_stratum = List.fold_left (fun acc pred -> max acc (get pred)) 0 idb in
    Ok
      (List.init (max_stratum + 1) (fun s ->
           List.filter (fun pred -> get pred = s) idb))
  end

(* ---- evaluation ------------------------------------------------------------ *)

type db = {
  edb : Edb.t;
  idb : (string, Relation.t) Hashtbl.t;
  edb_rel : (string, Relation.t) Hashtbl.t;  (* cached stored EDB *)
}

let idb_relation db pred =
  match Hashtbl.find_opt db.idb pred with
  | Some r -> r
  | None ->
    let r = Relation.create () in
    Hashtbl.add db.idb pred r;
    r

let edb_relation db pred =
  match Hashtbl.find_opt db.edb_rel pred with
  | Some r -> r
  | None ->
    let r = Relation.create () in
    List.iter (fun tu -> ignore (Relation.add r tu)) (Edb.facts db.edb pred);
    Hashtbl.add db.edb_rel pred r;
    r

exception Unsafe of string

(* Evaluate one rule, calling [emit] on every derived head tuple.
   [delta] optionally restricts one positive IDB atom to the delta
   relation (semi-naive); when [delta] is [None] full relations are
   used everywhere. *)
let eval_rule db idb_preds (r : rule) ~delta ~emit =
  let binding : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let term_value = function
    | Const n -> Some n
    | Var x -> Hashtbl.find_opt binding x
  in
  let bound_pattern a = List.map term_value a.args in
  let all_bound a = List.for_all (fun t -> term_value t <> None) a.args in
  let bind_tuple a tuple k =
    (* unify the atom's args with a concrete tuple *)
    let added = ref [] in
    let ok =
      List.for_all2
        (fun t v ->
          match t with
          | Const c -> c = v
          | Var x -> (
            match Hashtbl.find_opt binding x with
            | Some v' -> v = v'
            | None ->
              Hashtbl.add binding x v;
              added := x :: !added;
              true))
        a.args tuple
    in
    if ok then k ();
    List.iter (Hashtbl.remove binding) !added
  in
  (* pick an evaluation order dynamically: any stored positive atom can
     run; negation and externals wait for full binding *)
  let relation_for a ~use_delta =
    if List.mem a.pred idb_preds then
      match (use_delta, delta) with
      | true, Some (dpred, drel) when dpred = a.pred -> Some drel
      | _ -> Some (idb_relation db a.pred)
    else if Edb.is_external db.edb a.pred then None
    else Some (edb_relation db a.pred)
  in
  let rec solve literals ~delta_pending =
    match literals with
    | [] ->
      if delta_pending then () (* a semi-naive pass must consume its delta *)
      else
        emit
          (List.map
             (fun t ->
               match term_value t with
               | Some v -> v
               | None -> raise (Unsafe ("unbound head variable in " ^ r.head.pred)))
             r.head.args)
    | _ ->
      (* choose the next literal *)
      let ready = function
        | Pos a -> Edb.is_external db.edb a.pred = false || all_bound a
        | Neg a -> all_bound a
      in
      let rec split acc = function
        | [] -> None
        | lit :: rest when ready lit -> Some (lit, List.rev_append acc rest)
        | lit :: rest -> split (lit :: acc) rest
      in
      (match split [] literals with
      | None ->
        raise
          (Unsafe
             (Printf.sprintf "rule for %s: cannot bind all variables"
                r.head.pred))
      | Some (Pos a, rest) when Edb.is_external db.edb a.pred ->
        let args = List.map (fun t -> Option.get (term_value t)) a.args in
        if Edb.eval_external db.edb a.pred args then
          solve rest ~delta_pending
      | Some (Pos a, rest) ->
        (* try the delta relation for this atom if it is the delta
           predicate and the delta has not been consumed yet *)
        let with_rel rel still_pending =
          Relation.iter_matching rel (bound_pattern a) (fun tuple ->
              bind_tuple a tuple (fun () -> solve rest ~delta_pending:still_pending))
        in
        (match delta with
        | Some (dpred, _) when dpred = a.pred && delta_pending ->
          (* two choices: this occurrence is the delta occurrence, or a
             later one is.  Cover both: delta here + full-relation here
             with delta still pending. *)
          (match relation_for a ~use_delta:true with
          | Some drel -> with_rel drel false
          | None -> ());
          if List.exists (function (Pos b | Neg b) -> b.pred = dpred) rest
          then begin
            match relation_for a ~use_delta:false with
            | Some full -> with_rel full true
            | None -> ()
          end
        | _ -> (
          match relation_for a ~use_delta:false with
          | Some rel -> with_rel rel delta_pending
          | None -> ()))
      | Some (Neg a, rest) ->
        let args = List.map (fun t -> Option.get (term_value t)) a.args in
        let holds =
          if Edb.is_external db.edb a.pred then
            Edb.eval_external db.edb a.pred args
          else
            let rel =
              if List.mem a.pred idb_preds then idb_relation db a.pred
              else edb_relation db a.pred
            in
            Relation.mem rel args
        in
        if not holds then solve rest ~delta_pending)
  in
  solve r.body ~delta_pending:(delta <> None)

let run edb (p : program) =
  match stratify p with
  | Error _ as e -> e
  | Ok strata -> (
    let db = { edb; idb = Hashtbl.create 16; edb_rel = Hashtbl.create 32 } in
    let idb_preds = idb_predicates p in
    try
      List.iter
        (fun stratum_preds ->
          let rules =
            List.filter (fun r -> List.mem r.head.pred stratum_preds) p.rules
          in
          (* initial naive pass *)
          let delta0 = Hashtbl.create 8 in
          List.iter
            (fun pred -> Hashtbl.replace delta0 pred (Relation.create ()))
            stratum_preds;
          List.iter
            (fun r ->
              eval_rule db idb_preds r ~delta:None ~emit:(fun tuple ->
                  if Relation.add (idb_relation db r.head.pred) tuple then
                    ignore (Relation.add (Hashtbl.find delta0 r.head.pred) tuple)))
            rules;
          (* semi-naive iterations *)
          let deltas = ref delta0 in
          let continue = ref true in
          while !continue do
            let next = Hashtbl.create 8 in
            List.iter
              (fun pred -> Hashtbl.replace next pred (Relation.create ()))
              stratum_preds;
            let produced = ref false in
            List.iter
              (fun r ->
                (* one semi-naive pass per delta predicate occurring in
                   the rule body *)
                List.iter
                  (fun dpred ->
                    let drel = Hashtbl.find !deltas dpred in
                    if Relation.cardinal drel > 0
                       && List.exists
                            (function (Pos a | Neg a) -> a.pred = dpred)
                            r.body
                    then
                      eval_rule db idb_preds r ~delta:(Some (dpred, drel))
                        ~emit:(fun tuple ->
                          if Relation.add (idb_relation db r.head.pred) tuple
                          then begin
                            produced := true;
                            ignore
                              (Relation.add (Hashtbl.find next r.head.pred) tuple)
                          end))
                  stratum_preds)
              rules;
            deltas := next;
            continue := !produced
          done)
        strata;
      Ok (Relation.to_list (idb_relation db p.goal))
    with Unsafe m -> Error m)

let query_nodes edb p =
  match run edb p with
  | Error _ as e -> e
  | Ok tuples ->
    Ok
      (List.sort_uniq Int.compare
         (List.filter_map (function [ n ] -> Some n | _ -> None) tuples))
