module Value = Jsont.Value

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let as_nat what = function
  | Value.Num n when n >= 0 -> n
  (* text parsing cannot produce a negative [Num], but [of_value]
     accepts programmatically built values — don't let a negative bound
     slip through as if it were a natural *)
  | Value.Num n -> bad "%s expects a natural number, got %d" what n
  | v -> bad "%s expects a natural number, got %s" what (Value.kind_name v)

let as_string what = function
  | Value.Str s -> s
  | v -> bad "%s expects a string, got %s" what (Value.kind_name v)

let as_array what = function
  | Value.Arr vs -> vs
  | v -> bad "%s expects an array, got %s" what (Value.kind_name v)

let as_object what = function
  | Value.Obj kvs -> kvs
  | v -> bad "%s expects an object, got %s" what (Value.kind_name v)

let as_bool what = function
  | Value.Str "true" -> true
  | Value.Str "false" -> false
  | v -> bad "%s expects true or false, got %s" what (Value.to_string v)

let parse_regex what s =
  match Rexp.Parse.parse s with
  | Ok e -> e
  | Error m -> bad "%s: bad regular expression %S (%s)" what s m

let parse_type = function
  | Value.Str "object" -> Schema.T_object
  | Value.Str "array" -> Schema.T_array
  | Value.Str "string" -> Schema.T_string
  | Value.Str ("number" | "integer") -> Schema.T_number
  | v -> bad "unknown type %s" (Value.to_string v)

let parse_ref s =
  let prefix = "#/definitions/" in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    String.sub s n (String.length s - n)
  else bad "$ref %S: only #/definitions/<name> references are supported" s

let rec parse_schema ~ignore_unknown ~root (v : Value.t) : Schema.t =
  let kvs = as_object "a schema" v in
  (* the text route rejects duplicate keys at the JSON layer; values
     built programmatically must not smuggle a keyword in twice (the
     conjuncts would silently conjoin, e.g. two [type]s) *)
  (match Value.duplicate_key kvs with
  | Some k -> bad "schema keyword %S given twice in one object" k
  | None -> ());
  let sub v = parse_schema ~ignore_unknown ~root:false v in
  List.filter_map
    (fun (key, v) ->
      match key with
      | "type" -> Some (Schema.C_type (parse_type v))
      | "pattern" -> Some (Schema.C_pattern (parse_regex "pattern" (as_string "pattern" v)))
      | "minimum" -> Some (Schema.C_minimum (as_nat "minimum" v))
      | "maximum" -> Some (Schema.C_maximum (as_nat "maximum" v))
      | "multipleOf" -> Some (Schema.C_multiple_of (as_nat "multipleOf" v))
      | "minProperties" -> Some (Schema.C_min_properties (as_nat "minProperties" v))
      | "maxProperties" -> Some (Schema.C_max_properties (as_nat "maxProperties" v))
      | "required" ->
        Some (Schema.C_required (List.map (as_string "required") (as_array "required" v)))
      | "properties" ->
        Some
          (Schema.C_properties
             (List.map (fun (k, s) -> (k, sub s)) (as_object "properties" v)))
      | "patternProperties" ->
        Some
          (Schema.C_pattern_properties
             (List.map
                (fun (k, s) -> (parse_regex "patternProperties" k, sub s))
                (as_object "patternProperties" v)))
      | "additionalProperties" -> (
        match v with
        | Value.Str ("true" | "false") ->
          if as_bool "additionalProperties" v then None
          else Some (Schema.C_additional_properties Schema.s_false)
        | v -> Some (Schema.C_additional_properties (sub v)))
      | "items" -> (
        match v with
        | Value.Arr ss -> Some (Schema.C_items (List.map sub ss))
        | Value.Obj _ ->
          (* draft-style single schema: applies to all elements *)
          Some (Schema.C_additional_items (sub v))
        | v -> bad "items expects an array or an object, got %s" (Value.kind_name v))
      | "additionalItems" -> (
        match v with
        | Value.Str ("true" | "false") ->
          if as_bool "additionalItems" v then None
          else Some (Schema.C_additional_items Schema.s_false)
        | v -> Some (Schema.C_additional_items (sub v)))
      | "uniqueItems" ->
        if as_bool "uniqueItems" v then Some Schema.C_unique_items else None
      | "anyOf" -> Some (Schema.C_any_of (List.map sub (as_array "anyOf" v)))
      | "allOf" -> Some (Schema.C_all_of (List.map sub (as_array "allOf" v)))
      | "not" -> Some (Schema.C_not (sub v))
      | "enum" -> Some (Schema.C_enum (as_array "enum" v))
      | "$ref" -> Some (Schema.C_ref (parse_ref (as_string "$ref" v)))
      | "definitions" ->
        if root then None (* handled separately *)
        else bad "definitions are only supported at the document root"
      | other ->
        if ignore_unknown then None else bad "unknown schema keyword %S" other)
    kvs

let of_value ?(ignore_unknown = false) v =
  match
    let defs =
      match v with
      | Value.Obj kvs -> (
        match List.assoc_opt "definitions" kvs with
        | Some (Value.Obj defs) ->
          List.map
            (fun (name, s) -> (name, parse_schema ~ignore_unknown ~root:false s))
            defs
        | Some v -> bad "definitions expects an object, got %s" (Value.kind_name v)
        | None -> [])
      | _ -> bad "a schema must be an object, got %s" (Value.kind_name v)
    in
    let root = parse_schema ~ignore_unknown ~root:true v in
    { Schema.definitions = defs; root }
  with
  | doc -> (
    match Schema.well_formed doc with
    | Ok () -> Ok doc
    | Error _ as e -> e)
  | exception Bad m -> Error m

let of_string ?ignore_unknown s =
  match Jsont.Parser.parse ~mode:`Lenient s with
  | Error e -> Error (Format.asprintf "%a" Jsont.Parser.pp_error e)
  | Ok v -> of_value ?ignore_unknown v

let of_string_exn ?ignore_unknown s =
  match of_string ?ignore_unknown s with
  | Ok doc -> doc
  | Error m -> invalid_arg ("Jschema.Parse.of_string_exn: " ^ m)
