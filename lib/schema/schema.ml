module Value = Jsont.Value

type jtype = T_object | T_array | T_string | T_number

type t = conjunct list

and conjunct =
  | C_type of jtype
  | C_pattern of Rexp.Syntax.t
  | C_minimum of int
  | C_maximum of int
  | C_multiple_of of int
  | C_min_properties of int
  | C_max_properties of int
  | C_required of string list
  | C_properties of (string * t) list
  | C_pattern_properties of (Rexp.Syntax.t * t) list
  | C_additional_properties of t
  | C_items of t list
  | C_additional_items of t
  | C_unique_items
  | C_any_of of t list
  | C_all_of of t list
  | C_not of t
  | C_enum of Value.t list
  | C_ref of string

type document = { definitions : (string * t) list; root : t }

let plain root = { definitions = []; root }

let s_false = [ C_not [] ]

(* references reachable without crossing a descending keyword *)
let rec nonmodal_refs (s : t) =
  List.concat_map
    (function
      | C_ref r -> [ r ]
      | C_any_of ss | C_all_of ss -> List.concat_map nonmodal_refs ss
      | C_not s -> nonmodal_refs s
      | C_type _ | C_pattern _ | C_minimum _ | C_maximum _ | C_multiple_of _
      | C_min_properties _ | C_max_properties _ | C_required _ | C_properties _
      | C_pattern_properties _ | C_additional_properties _ | C_items _
      | C_additional_items _ | C_unique_items | C_enum _ ->
        [])
    s

let rec all_refs (s : t) =
  List.concat_map
    (function
      | C_ref r -> [ r ]
      | C_any_of ss | C_all_of ss | C_items ss -> List.concat_map all_refs ss
      | C_not s | C_additional_properties s | C_additional_items s -> all_refs s
      | C_properties kvs -> List.concat_map (fun (_, s) -> all_refs s) kvs
      | C_pattern_properties kvs -> List.concat_map (fun (_, s) -> all_refs s) kvs
      | C_type _ | C_pattern _ | C_minimum _ | C_maximum _ | C_multiple_of _
      | C_min_properties _ | C_max_properties _ | C_required _ | C_unique_items
      | C_enum _ ->
        [])
    s

(* [multipleOf 0] describes no number at all: the validator would have
   to decide [n mod 0], so it treats the conjunct as always-false —
   reject it up front instead of silently validating nothing. *)
let rec has_zero_multiple (s : t) =
  List.exists
    (function
      | C_multiple_of 0 -> true
      | C_any_of ss | C_all_of ss | C_items ss -> List.exists has_zero_multiple ss
      | C_not s | C_additional_properties s | C_additional_items s ->
        has_zero_multiple s
      | C_properties kvs -> List.exists (fun (_, s) -> has_zero_multiple s) kvs
      | C_pattern_properties kvs ->
        List.exists (fun (_, s) -> has_zero_multiple s) kvs
      | C_type _ | C_pattern _ | C_minimum _ | C_maximum _ | C_multiple_of _
      | C_min_properties _ | C_max_properties _ | C_required _ | C_unique_items
      | C_enum _ | C_ref _ ->
        false)
    s

let well_formed doc =
  let names = List.map fst doc.definitions in
  let dup =
    let rec find = function
      | [] -> None
      | v :: rest -> if List.mem v rest then Some v else find rest
    in
    find names
  in
  match dup with
  | Some v -> Error (Printf.sprintf "definition %S given twice" v)
  | None when
      List.exists has_zero_multiple (doc.root :: List.map snd doc.definitions)
    ->
    Error "multipleOf 0 is satisfiable by no number"
  | None -> (
    let used = List.concat_map all_refs (doc.root :: List.map snd doc.definitions) in
    match List.find_opt (fun r -> not (List.mem r names)) used with
    | Some r -> Error (Printf.sprintf "unresolvable $ref to %S" r)
    | None ->
      (* acyclicity of the non-descending reference graph *)
      let color = Hashtbl.create 16 in
      let rec visit v =
        match Hashtbl.find_opt color v with
        | Some `Done -> Ok ()
        | Some `Active -> Error (Printf.sprintf "reference cycle through %S" v)
        | None ->
          Hashtbl.replace color v `Active;
          let rec visit_all = function
            | [] ->
              Hashtbl.replace color v `Done;
              Ok ()
            | w :: rest -> (
              match visit w with Ok () -> visit_all rest | Error _ as e -> e)
          in
          visit_all (nonmodal_refs (List.assoc v doc.definitions))
      in
      let rec all = function
        | [] -> Ok ()
        | (v, _) :: rest -> (
          match visit v with Ok () -> all rest | Error _ as e -> e)
      in
      all doc.definitions)

let rec schema_size (s : t) =
  List.fold_left (fun acc c -> acc + conjunct_size c) 1 s

and conjunct_size = function
  | C_type _ | C_minimum _ | C_maximum _ | C_multiple_of _ | C_min_properties _
  | C_max_properties _ | C_unique_items | C_ref _ ->
    1
  | C_pattern e -> Rexp.Syntax.size e
  | C_required ks -> 1 + List.length ks
  | C_properties kvs -> List.fold_left (fun acc (_, s) -> acc + 1 + schema_size s) 1 kvs
  | C_pattern_properties kvs ->
    List.fold_left (fun acc (e, s) -> acc + Rexp.Syntax.size e + schema_size s) 1 kvs
  | C_additional_properties s | C_additional_items s | C_not s -> 1 + schema_size s
  | C_items ss | C_any_of ss | C_all_of ss ->
    List.fold_left (fun acc s -> acc + schema_size s) 1 ss
  | C_enum vs -> List.fold_left (fun acc v -> acc + Value.size v) 1 vs

let size doc =
  List.fold_left (fun acc (_, s) -> acc + 1 + schema_size s) (schema_size doc.root)
    doc.definitions

(* ---- rendering back to JSON ---------------------------------------------- *)

let type_name = function
  | T_object -> "object"
  | T_array -> "array"
  | T_string -> "string"
  | T_number -> "number"

let regex_str e = Rexp.Syntax.to_string e

let rec schema_to_value (s : t) : Value.t =
  (* gather the pairs of every conjunct; allOf is used when two
     conjuncts would produce the same key *)
  let pairs_of = function
    | C_type ty -> [ ("type", Value.Str (type_name ty)) ]
    | C_pattern e -> [ ("pattern", Value.Str (regex_str e)) ]
    | C_minimum i -> [ ("minimum", Value.Num i) ]
    | C_maximum i -> [ ("maximum", Value.Num i) ]
    | C_multiple_of i -> [ ("multipleOf", Value.Num i) ]
    | C_min_properties i -> [ ("minProperties", Value.Num i) ]
    | C_max_properties i -> [ ("maxProperties", Value.Num i) ]
    | C_required ks -> [ ("required", Value.Arr (List.map (fun k -> Value.Str k) ks)) ]
    | C_properties kvs ->
      [ ("properties", Value.Obj (List.map (fun (k, s) -> (k, schema_to_value s)) kvs)) ]
    | C_pattern_properties kvs ->
      [ ( "patternProperties",
          Value.Obj (List.map (fun (e, s) -> (regex_str e, schema_to_value s)) kvs) ) ]
    | C_additional_properties s -> [ ("additionalProperties", schema_to_value s) ]
    | C_items ss -> [ ("items", Value.Arr (List.map schema_to_value ss)) ]
    | C_additional_items s -> [ ("additionalItems", schema_to_value s) ]
    | C_unique_items -> [ ("uniqueItems", Value.Str "true") ]
    | C_any_of ss -> [ ("anyOf", Value.Arr (List.map schema_to_value ss)) ]
    | C_all_of ss -> [ ("allOf", Value.Arr (List.map schema_to_value ss)) ]
    | C_not s -> [ ("not", schema_to_value s) ]
    | C_enum vs -> [ ("enum", Value.Arr vs) ]
    | C_ref r -> [ ("$ref", Value.Str ("#/definitions/" ^ r)) ]
  in
  let rec assemble acc overflow = function
    | [] -> (List.rev acc, List.rev overflow)
    | c :: rest ->
      let pairs = pairs_of c in
      if List.exists (fun (k, _) -> List.mem_assoc k acc) pairs then
        assemble acc (schema_to_value [ c ] :: overflow) rest
      else assemble (List.rev_append pairs acc) overflow rest
  in
  let pairs, overflow = assemble [] [] s in
  match overflow with
  | [] -> Value.Obj pairs
  | _ ->
    Value.Obj [ ("allOf", Value.Arr (Value.Obj pairs :: overflow)) ]

let to_value doc =
  match doc.definitions with
  | [] -> schema_to_value doc.root
  | defs -> (
    let defs_value =
      ( "definitions",
        Value.Obj (List.map (fun (k, s) -> (k, schema_to_value s)) defs) )
    in
    match schema_to_value doc.root with
    | Value.Obj pairs when not (List.mem_assoc "definitions" pairs) ->
      Value.Obj (defs_value :: pairs)
    | other -> Value.Obj [ defs_value; ("allOf", Value.Arr [ other ]) ])

let pp fmt doc = Format.pp_print_string fmt (Jsont.Printer.pretty (to_value doc))
