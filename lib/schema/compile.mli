(** Compile-once schema validation (the fast path behind
    {!Validate.Plan}).

    {!compile} interns every subschema of a {!Schema.document} —
    definitions included, reference cycles allowed — into an immutable
    array of {e plan nodes} with integer ids, hash-consing structurally
    equal subschemas so [$ref]/[anyOf]/[allOf] sharing is explicit in
    the plan graph.  Per plan node it precomputes everything the
    interpreter re-derives at every visit:

    - a key-dispatch table (property name → subschema ids), so
      [properties]/[additionalProperties] need one sweep over the
      object's members instead of a [List.assoc] scan per property;
    - the required-key set (checked through the tree's O(1) key
      lookup);
    - [pattern]/[patternProperties] regexes lowered to {!Rexp.Dfa} at
      compile time;
    - resolved [items]/[additionalItems] vectors and collapsed numeric
      / arity bounds;
    - [enum] constants pre-hashed and sorted for binary search on the
      subtree hash.

    {!run_tree} executes a plan directly over the flat {!Jsont.Tree}
    columns — no [Value.t] materialization — memoizing
    (node, plan id) verdicts for the plan nodes with ≥ 2 incoming
    edges, which bounds evaluation to one visit per (node, subschema)
    pair: O(|D|·|φ|) even through [$ref] sharing (Proposition 8's
    bound, which the structural interpreter does not meet).

    The decided relation is {e exactly} {!Validate.validates} — the
    interpreter stays as the differential oracle, including its
    conjunct-interaction fine print (last [items] wins, all
    [additionalProperties] apply, "named" keys are exempt).

    Metrics: span [validate.compile]; counters [validate.plan.nodes],
    [validate.compile.dfas], [validate.plan.runs], [validate.memo.hit].

    A compiled plan is immutable and safe to share across domains; the
    per-run memo table is private to each {!run_tree} call. *)

type t
(** A compiled schema document. *)

val compile : ?budget:Obs.Budget.t -> Schema.document -> t
(** Compile a document.  Checks {!Schema.well_formed} exactly once.
    [budget] bounds the compilation (one fuel unit per distinct
    subschema, recursion depth against the ceiling).
    @raise Invalid_argument if the schema is not well-formed. *)

val node_count : t -> int
(** Number of interned plan nodes (distinct subschemas). *)

val run_tree : ?budget:Obs.Budget.t -> t -> Jsont.Tree.t -> bool
(** Validate a tree.  [budget] is charged one fuel unit per fresh
    (node, plan) evaluation — memo hits are free — and recursion depth
    is checked per level.  @raise Obs.Budget.Exhausted. *)

val run : ?budget:Obs.Budget.t -> t -> Jsont.Value.t -> bool
(** [run p v = run_tree p (Tree.of_value v)] — tree construction is
    charged to the same budget.  @raise Jsont.Value.Invalid on invalid
    values (negative numbers, duplicate keys), like every tree-based
    engine. *)

val run_stream :
  ?budget:Obs.Budget.t -> ?mode:[ `Strict | `Lenient ] -> t -> string
  -> bool
(** [run_stream p input] parses and validates [input] in one pass over
    the token stream, never materializing the document: memory is
    proportional to nesting depth plus the width of open containers,
    not to document size.  Per open container it keeps one frame of
    (plan id, obligation) state for the {e same-node closure} of the
    active plan nodes (everything reachable through
    [anyOf]/[allOf]/[not], which constrain the same value); type masks,
    bounds, required sets, key dispatch and items vectors resolve as
    tokens arrive, and subtrees no active node constrains are
    fast-forwarded by {!Jsont.Parser.skip_value} with every syntax /
    duplicate-key / literal-admission check intact.  Keywords that
    genuinely need the subtree — [uniqueItems], [enum] on containers,
    plus the defensive case of a cyclic same-node closure — {e spill}:
    exactly that subtree is materialized through the
    {!Jsont.Tree.of_lexer_exn} column builder and decided by the
    {!run_tree} executor, then streaming resumes after it.

    The decided relation is exactly {!run_tree} ∘ {!Jsont.Tree.of_string}
    (hence also {!Validate.validates}); rendered errors on malformed
    documents are byte-identical to {!Jsont.Tree.of_string_exn}'s.
    [budget]: the depth ceiling follows document nesting with
    parser-identical positions; fuel is charged per streamed value (one
    parse unit plus one per active closure node), per skipped value
    (one), and per spilled value (the materialization's two plus
    {!run_tree}'s per-(node, plan) unit) — a single budget covers the
    fused parse+validate, where the two-stage route draws parse and
    run fuel separately.  [mode] admits literals like the parser's
    (default [`Strict]).

    Counters: [validate.stream.runs], [validate.stream.spills],
    [validate.stream.skipped_bytes] (plus the shared [parse.values]).

    @raise Jsont.Parser.Parse_error on malformed input and budget
    exhaustion inside the streaming/parsing layers,
    @raise Obs.Budget.Exhausted from a spilled {!run_tree} execution,
    @raise Jsont.Lexer.Error on lexical errors. *)

val run_lexer :
  ?budget:Obs.Budget.t -> ?mode:[ `Strict | `Lenient ] -> t -> Jsont.Lexer.t
  -> bool
(** [run_lexer p lx] is {!run_stream} over an existing lexer: the
    document is whatever token stream [lx] yields up to [Eof].
    [run_stream p input = run_lexer p (Lexer.create input)].

    With a {!Jsont.Lexer.create_feed} lexer carrying a [refill]
    callback this validates a chunked byte stream — stdin, a socket, a
    file read in fixed-size slices — without ever holding the document
    in memory, and (by the lexer's resumption contract) with verdicts,
    errors and fuel charges byte-identical to the one-shot path. *)
