(** Compile-once schema validation (the fast path behind
    {!Validate.Plan}).

    {!compile} interns every subschema of a {!Schema.document} —
    definitions included, reference cycles allowed — into an immutable
    array of {e plan nodes} with integer ids, hash-consing structurally
    equal subschemas so [$ref]/[anyOf]/[allOf] sharing is explicit in
    the plan graph.  Per plan node it precomputes everything the
    interpreter re-derives at every visit:

    - a key-dispatch table (property name → subschema ids), so
      [properties]/[additionalProperties] need one sweep over the
      object's members instead of a [List.assoc] scan per property;
    - the required-key set (checked through the tree's O(1) key
      lookup);
    - [pattern]/[patternProperties] regexes lowered to {!Rexp.Dfa} at
      compile time;
    - resolved [items]/[additionalItems] vectors and collapsed numeric
      / arity bounds;
    - [enum] constants pre-hashed and sorted for binary search on the
      subtree hash.

    {!run_tree} executes a plan directly over the flat {!Jsont.Tree}
    columns — no [Value.t] materialization — memoizing
    (node, plan id) verdicts for the plan nodes with ≥ 2 incoming
    edges, which bounds evaluation to one visit per (node, subschema)
    pair: O(|D|·|φ|) even through [$ref] sharing (Proposition 8's
    bound, which the structural interpreter does not meet).

    The decided relation is {e exactly} {!Validate.validates} — the
    interpreter stays as the differential oracle, including its
    conjunct-interaction fine print (last [items] wins, all
    [additionalProperties] apply, "named" keys are exempt).

    Metrics: span [validate.compile]; counters [validate.plan.nodes],
    [validate.compile.dfas], [validate.plan.runs], [validate.memo.hit].

    A compiled plan is immutable and safe to share across domains; the
    per-run memo table is private to each {!run_tree} call. *)

type t
(** A compiled schema document. *)

val compile : ?budget:Obs.Budget.t -> Schema.document -> t
(** Compile a document.  Checks {!Schema.well_formed} exactly once.
    [budget] bounds the compilation (one fuel unit per distinct
    subschema, recursion depth against the ceiling).
    @raise Invalid_argument if the schema is not well-formed. *)

val node_count : t -> int
(** Number of interned plan nodes (distinct subschemas). *)

val run_tree : ?budget:Obs.Budget.t -> t -> Jsont.Tree.t -> bool
(** Validate a tree.  [budget] is charged one fuel unit per fresh
    (node, plan) evaluation — memo hits are free — and recursion depth
    is checked per level.  @raise Obs.Budget.Exhausted. *)

val run : ?budget:Obs.Budget.t -> t -> Jsont.Value.t -> bool
(** [run p v = run_tree p (Tree.of_value v)] — tree construction is
    charged to the same budget.  @raise Jsont.Value.Invalid on invalid
    values (negative numbers, duplicate keys), like every tree-based
    engine. *)
