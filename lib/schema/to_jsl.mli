(** Theorem 1 / Theorem 3, schema-to-logic direction: every JSON Schema
    document has an equivalent (recursive) JSL expression.

    Each conjunct becomes a conjunct of the JSL formula; navigation
    keywords become modalities ([properties]/[patternProperties] → □,
    [required] → ◇, [items]/[additionalItems] → index modalities), and
    [additionalProperties] quantifies over the {e complement} of the
    sibling key languages — computed with the language algebra of
    {!Rexp.Lang} and rendered back to an expression by state
    elimination.

    [definitions]/[$ref] become recursive-JSL definitions (Theorem 3);
    schema well-formedness maps onto JSL well-formedness. *)

val schema : ?siblings:Schema.t -> Schema.t -> Jlogic.Jsl.t
(** Translate a bare schema.  [siblings] only matters for a lone
    [additionalProperties] conjunct (defaults to the schema itself). *)

val document : Schema.document -> Jlogic.Jsl_rec.t
(** Translate a full document.  @raise Invalid_argument when the
    document is not well-formed. *)
