(** Direct JSON Schema validator — independent of the JSL machinery, so
    the Theorem 1 equivalence can be tested as the agreement of two
    separately implemented semantics.

    Follows the paper's semantics as documented in {!Schema}. *)

val validates : Schema.document -> Jsont.Value.t -> bool
(** Does the document validate against the schema?
    @raise Invalid_argument if the schema is not well-formed. *)

val validates_schema :
  ?definitions:(string * Schema.t) list -> Schema.t -> Jsont.Value.t -> bool
(** Validate against a bare schema with an optional definitions
    environment. *)
