(** Direct JSON Schema validator — independent of the JSL machinery, so
    the Theorem 1 equivalence can be tested as the agreement of two
    separately implemented semantics.

    Follows the paper's semantics as documented in {!Schema}. *)

val validates :
  ?budget:Obs.Budget.t -> Schema.document -> Jsont.Value.t -> bool
(** Does the document validate against the schema?  [budget] bounds the
    work: one fuel unit per (schema, value) visit, recursion depth
    against the budget's ceiling.
    @raise Invalid_argument if the schema is not well-formed.
    @raise Obs.Budget.Exhausted when [budget] runs out. *)

val validates_schema :
  ?budget:Obs.Budget.t -> ?definitions:(string * Schema.t) list
  -> Schema.t -> Jsont.Value.t -> bool
(** Validate against a bare schema with an optional definitions
    environment (no well-formedness check). *)

val prepare :
  Schema.document -> ?budget:Obs.Budget.t -> Jsont.Value.t -> bool
(** [prepare doc] checks well-formedness {e once} and returns the
    per-document validator, so a batch run doesn't re-walk the schema
    for every document.  [validates doc v = prepare doc v].
    @raise Invalid_argument if the schema is not well-formed. *)

module Plan = Compile
(** The compiled fast path ({!Compile}): [Plan.run_tree (Plan.compile
    doc) t] decides the same relation as [validates doc] in
    O(|D|·|φ|). *)
