(** Schema inference from example documents.

    Section 5.2 motivates the study of satisfiability by noting that
    "the community has repeatedly stated the need for algorithms that
    can learn JSON Schemas from examples" and that basic static tasks
    are the first steps toward it.  This module is that first step,
    executable: it infers a schema generalizing a set of example
    documents, with the guarantee — property-tested — that {e every
    example validates against the inferred schema}.

    The inference is structural and deliberately predictable:

    - atoms contribute their type; numbers additionally narrow a
      [minimum]/[maximum] interval (and a [multipleOf] when a common
      divisor > 1 exists); strings contribute an [enum] when few
      distinct values are seen, else just the type;
    - objects merge key-wise: keys present in {e every} example become
      [required]; every key's values are inferred recursively under
      [properties];
    - arrays merge element-wise into a single [additionalItems] schema
      (the homogeneous-collection reading);
    - heterogeneous types at one position become an [anyOf] of the
      per-type inferences.

    [`Strict] mode additionally closes objects with
    [additionalProperties: false] and emits the numeric bounds;
    [`Loose] (default) omits both, generalizing further. *)

val infer : ?mode:[ `Loose | `Strict ] -> Jsont.Value.t list -> Schema.t
(** @raise Invalid_argument on an empty example list. *)

val infer_document :
  ?mode:[ `Loose | `Strict ] -> Jsont.Value.t list -> Schema.document
(** {!infer} wrapped as a definition-free document. *)
