module Value = Jsont.Value

(* The compiled-regex cache is process-global; batch evaluation runs
   validators on several domains at once, so guard it with a mutex.
   Compilation happens outside the critical section — losing the race
   only means compiling the same syntax twice. *)
let lang_cache : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t = Hashtbl.create 32
let lang_cache_mutex = Mutex.create ()

let lang e =
  let cached =
    Mutex.lock lang_cache_mutex;
    let c = Hashtbl.find_opt lang_cache e in
    Mutex.unlock lang_cache_mutex;
    c
  in
  match cached with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Mutex.lock lang_cache_mutex;
    if not (Hashtbl.mem lang_cache e) then Hashtbl.add lang_cache e l;
    Mutex.unlock lang_cache_mutex;
    l

let matches e s = Rexp.Lang.matches (lang e) s

(* [items]/[additionalItems] interact with each other, and
   [additionalProperties] needs the keys named by its sibling
   [properties]/[patternProperties]; both are therefore resolved at the
   schema (conjunction) level rather than per conjunct.

   The budget burns one fuel unit per (schema, value) visit and checks
   the recursion depth at every nesting level (schema descent and value
   descent alike), so both adversarially deep documents and deeply
   shared [$ref]/[anyOf] blowups surface as structured
   {!Obs.Budget.Exhausted} errors. *)
let rec validate_schema b d defs (s : Schema.t) (v : Value.t) =
  Obs.Budget.check_depth b d;
  Obs.Budget.burn b 1;
  let d = d + 1 in
  items_ok b d defs s v
  && additional_properties_ok b d defs s v
  && List.for_all
       (fun c ->
         match c with
         | Schema.C_items _ | Schema.C_additional_items _
         | Schema.C_additional_properties _ ->
           true (* handled above *)
         | c -> validate_conjunct b d defs c v)
       s

and items_ok b d defs s v =
  let items = ref None and additional = ref None in
  List.iter
    (function
      | Schema.C_items ss -> items := Some ss
      | Schema.C_additional_items a -> additional := Some a
      | _ -> ())
    s;
  match (!items, !additional, v) with
  | None, None, _ -> true
  | _, _, (Value.Num _ | Value.Str _ | Value.Obj _) -> true (* type-guarded *)
  | None, Some a, Value.Arr vs -> List.for_all (validate_schema b d defs a) vs
  | Some ss, add, Value.Arr vs ->
    let rec go schemas elems =
      match (schemas, elems) with
      | [], [] -> true
      | [], rest -> (
        match add with
        | None -> false (* §5.1: the array has exactly n elements *)
        | Some a -> List.for_all (validate_schema b d defs a) rest)
      | _ :: _, [] -> false (* the n positions must exist *)
      | s :: schemas, e :: elems ->
        validate_schema b d defs s e && go schemas elems
    in
    go ss vs

and additional_properties_ok b d defs s v =
  match v with
  | Value.Num _ | Value.Str _ | Value.Arr _ -> true
  | Value.Obj kvs ->
    let additional =
      List.filter_map
        (function Schema.C_additional_properties a -> Some a | _ -> None)
        s
    in
    if additional = [] then true
    else begin
      (* keys covered by sibling properties / patternProperties *)
      let named k =
        List.exists
          (function
            | Schema.C_properties props -> List.mem_assoc k props
            | Schema.C_pattern_properties pats ->
              List.exists (fun (e, _) -> matches e k) pats
            | _ -> false)
          s
      in
      List.for_all
        (fun (k, v) ->
          named k
          || List.for_all (fun a -> validate_schema b d defs a v) additional)
        kvs
    end

and validate_conjunct b d defs (c : Schema.conjunct) (v : Value.t) =
  match (c, v) with
  | (Schema.C_items _ | Schema.C_additional_items _ | Schema.C_additional_properties _), _
    ->
    assert false (* handled in validate_schema *)
  | Schema.C_type Schema.T_object, _ -> Value.kind v = `Obj
  | Schema.C_type Schema.T_array, _ -> Value.kind v = `Arr
  | Schema.C_type Schema.T_string, _ -> Value.kind v = `Str
  | Schema.C_type Schema.T_number, _ -> Value.kind v = `Num
  | Schema.C_pattern e, Value.Str s -> matches e s
  | Schema.C_pattern _, _ -> true
  | Schema.C_minimum i, Value.Num n -> n >= i
  | Schema.C_minimum _, _ -> true
  | Schema.C_maximum i, Value.Num n -> n <= i
  | Schema.C_maximum _, _ -> true
  | Schema.C_multiple_of i, Value.Num n -> i <> 0 && n mod i = 0
  | Schema.C_multiple_of _, _ -> true
  | Schema.C_min_properties i, Value.Obj kvs -> List.length kvs >= i
  | Schema.C_min_properties _, _ -> true
  | Schema.C_max_properties i, Value.Obj kvs -> List.length kvs <= i
  | Schema.C_max_properties _, _ -> true
  | Schema.C_required ks, Value.Obj kvs ->
    List.for_all (fun k -> List.mem_assoc k kvs) ks
  | Schema.C_required _, _ -> true
  | Schema.C_properties props, Value.Obj kvs ->
    List.for_all
      (fun (k, s) ->
        match List.assoc_opt k kvs with
        | None -> true
        | Some v -> validate_schema b d defs s v)
      props
  | Schema.C_properties _, _ -> true
  | Schema.C_pattern_properties pats, Value.Obj kvs ->
    List.for_all
      (fun (k, v) ->
        List.for_all
          (fun (e, s) -> (not (matches e k)) || validate_schema b d defs s v)
          pats)
      kvs
  | Schema.C_pattern_properties _, _ -> true
  | Schema.C_unique_items, Value.Arr vs ->
    let sorted = List.sort Value.compare vs in
    let rec distinct = function
      | a :: (b :: _ as rest) -> Value.compare a b <> 0 && distinct rest
      | _ -> true
    in
    distinct sorted
  | Schema.C_unique_items, _ -> true
  | Schema.C_any_of ss, v ->
    List.exists (fun s -> validate_schema b d defs s v) ss
  | Schema.C_all_of ss, v ->
    List.for_all (fun s -> validate_schema b d defs s v) ss
  | Schema.C_not s, v -> not (validate_schema b d defs s v)
  | Schema.C_enum vs, v -> List.exists (Value.equal v) vs
  | Schema.C_ref r, v -> validate_schema b d defs (List.assoc r defs) v

let validates_schema ?(budget = Obs.Budget.unlimited) ?(definitions = []) s v =
  validate_schema budget 0 definitions s v

(* Well-formedness is a property of the schema, not of the document —
   check it once here and hand back a closure for the per-document
   work, so batch validation doesn't re-walk the schema every time. *)
let prepare (doc : Schema.document) =
  (match Schema.well_formed doc with
  | Ok () -> ()
  | Error m -> invalid_arg ("Jschema.Validate.validates: " ^ m));
  fun ?(budget = Obs.Budget.unlimited) v ->
    validate_schema budget 0 doc.definitions doc.root v

let validates ?budget (doc : Schema.document) v = prepare doc ?budget v

module Plan = Compile
