(** Abstract syntax of the JSON Schema core fragment of Section 5.1 —
    exactly the keywords of Table 1, plus the [definitions]/[$ref]
    recursion of Section 5.3.

    A schema is a {e conjunction} of keyword constraints ({!conjunct});
    the empty conjunction is the empty schema [{}], which validates
    every document.

    Semantics follows the paper (and Pezoa et al. [29]) rather than
    every detail of draft-4; the notable points:

    - keywords are type-guarded: [pattern] constrains only strings,
      [minimum]/[maximum]/[multipleOf] only numbers, [minProperties]/
      [maxProperties]/[required] only objects, [uniqueItems]/[items]/
      [additionalItems] only arrays — a document of another type
      passes vacuously;
    - [items: \[J₁…Jₙ\]] "specifies a document with an array of n
      elements" (§5.1): the n positions must {e exist}; without
      [additionalItems] no further elements are allowed, with it the
      extra elements must validate against it;
    - [minimum]/[maximum] are inclusive (the §5.1 example describing
      0, 4, 8 and 12);
    - array positions are 0-based. *)

type jtype = T_object | T_array | T_string | T_number

type t = conjunct list

and conjunct =
  | C_type of jtype
  | C_pattern of Rexp.Syntax.t
  | C_minimum of int
  | C_maximum of int
  | C_multiple_of of int
  | C_min_properties of int
  | C_max_properties of int
  | C_required of string list
  | C_properties of (string * t) list
  | C_pattern_properties of (Rexp.Syntax.t * t) list
  | C_additional_properties of t
  | C_items of t list
  | C_additional_items of t
  | C_unique_items
  | C_any_of of t list
  | C_all_of of t list
  | C_not of t
  | C_enum of Jsont.Value.t list
  | C_ref of string  (** reference to a definition by name *)

type document = { definitions : (string * t) list; root : t }
(** A full schema document: its [definitions] section and the top-level
    schema. *)

val plain : t -> document
(** A document with no definitions. *)

val s_false : t
(** A schema no document validates against. *)

val well_formed : document -> (unit, string) result
(** Definition names unique, no [multipleOf 0] anywhere (it is
    satisfiable by no number — the validator would otherwise treat it
    as silently always-false), every [$ref] resolvable, and the
    reference precedence graph (references reachable without crossing
    a schema-descending keyword) acyclic — the well-formedness
    condition of §5.3 carried over from recursive JSL. *)

val size : document -> int
val schema_size : t -> int

val to_value : document -> Jsont.Value.t
(** Render as a JSON document ("every JSON Schema is a JSON document
    itself"). *)

val pp : Format.formatter -> document -> unit
