(** Parsing JSON Schema documents (which are themselves JSON values)
    into {!Schema.t}.

    Accepts the Table 1 keywords plus [definitions] (root only) and
    [$ref] (to [#/definitions/<name>]).  Since the paper's data model
    has no booleans, [uniqueItems] and boolean-valued
    [additionalProperties]/[additionalItems] accept the {e strings}
    ["true"]/["false"] (which is also what lenient JSON parsing turns
    literal [true]/[false] into).  Unknown keywords are an error unless
    [ignore_unknown] is set. *)

val of_value :
  ?ignore_unknown:bool -> Jsont.Value.t -> (Schema.document, string) result
(** Parse and check well-formedness. *)

val of_string :
  ?ignore_unknown:bool -> string -> (Schema.document, string) result
(** Parse the JSON text (leniently, so [true]/[false] literals work),
    then {!of_value}. *)

val of_string_exn : ?ignore_unknown:bool -> string -> Schema.document
(** @raise Invalid_argument on errors. *)
