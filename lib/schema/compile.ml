module Value = Jsont.Value
module Tree = Jsont.Tree
module Lexer = Jsont.Lexer
module Parser = Jsont.Parser
module Dfa = Rexp.Dfa

(* Enum constants are pre-hashed with the tree hash so the runtime
   check is an integer binary search plus at most a handful of
   structural comparisons on hash-equal candidates. *)
type enum_entry = { e_hash : int; e_size : int; e_value : Value.t }

(* One plan node is the compiled form of one schema conjunction.  All
   subschema positions hold plan ids into the enclosing plan's node
   array; every keyword family is pre-resolved to the exact shape the
   executor consumes:

   - conjunct interactions are resolved at compile time the same way
     the interpreter resolves them at every visit: the {e last}
     [items]/[additionalItems] conjunct wins, {e all}
     [additionalProperties] conjuncts apply, and a key is "named"
     (exempt from [additionalProperties]) iff some sibling
     [properties] lists it or some sibling [patternProperties] regex
     matches it;
   - numeric bounds collapse to one interval, [type] conjuncts to one
     kind bitmask (two distinct types = empty mask = always false). *)
type node = {
  type_mask : int;  (* bit 0 = object, 1 = array, 2 = string, 3 = number *)
  patterns : Dfa.t array;
  min_bound : int;  (* max over [minimum] conjuncts; [min_int] if none *)
  max_bound : int;  (* min over [maximum] conjuncts; [max_int] if none *)
  multiples : int array;
  min_props : int;
  max_props : int;
  required : string array;
  props : (string, int array) Hashtbl.t;  (* key-dispatch table *)
  pattern_props : (Dfa.t * int) array;
  additional : int array;  (* all [additionalProperties]; [] = absent *)
  items : int array option;  (* the last [items] conjunct *)
  additional_items : int option;  (* the last [additionalItems] *)
  unique : bool;
  enums : enum_entry array array;  (* one sorted set per [enum] conjunct *)
  any_of : int array array;  (* one disjunction group per [anyOf] *)
  all_of : int array;  (* [allOf] members and resolved [$ref] targets *)
  nots : int array;
}

type t = {
  nodes : node array;
  shared : bool array;
    (* ≥ 2 incoming plan-graph edges — the memoized subset *)
  root : int;
}

let node_count p = Array.length p.nodes

(* ---- compilation --------------------------------------------------------- *)

type builder = {
  defs : (string * Schema.t) list;
  assigned : (int, node) Hashtbl.t;
  schema_ids : (Schema.t, int) Hashtbl.t;  (* structural hash-consing *)
  def_ids : (string, int) Hashtbl.t;
  refs : (int, int ref) Hashtbl.t;
  dfas : (Rexp.Syntax.t, Dfa.t) Hashtbl.t;
  mutable count : int;
  budget : Obs.Budget.t;
}

let fresh b =
  let id = b.count in
  b.count <- id + 1;
  Hashtbl.add b.refs id (ref 1);
  id

let bump b id = incr (Hashtbl.find b.refs id)

let dfa b e =
  match Hashtbl.find_opt b.dfas e with
  | Some d -> d
  | None ->
    let d = Dfa.of_syntax e in
    Obs.Metrics.incr "validate.compile.dfas";
    Hashtbl.add b.dfas e d;
    d

let enum_set vs =
  let entry v =
    (* an invalid constant (negative number, duplicate keys) can equal
       no constructible tree; drop it rather than fail the compile *)
    match Tree.of_value v with
    | tree ->
      Some
        { e_hash = Tree.subtree_hash tree Tree.root;
          e_size = Tree.node_count tree;
          e_value = v }
    | exception Value.Invalid _ -> None
  in
  let arr = Array.of_list (List.filter_map entry vs) in
  Array.sort
    (fun a b ->
      if a.e_hash <> b.e_hash then compare a.e_hash b.e_hash
      else compare a.e_size b.e_size)
    arr;
  arr

let type_bit = function
  | Schema.T_object -> 0b0001
  | Schema.T_array -> 0b0010
  | Schema.T_string -> 0b0100
  | Schema.T_number -> 0b1000

let rec intern b depth (s : Schema.t) =
  match Hashtbl.find_opt b.schema_ids s with
  | Some id ->
    bump b id;
    id
  | None ->
    Obs.Budget.check_depth b.budget depth;
    Obs.Budget.burn b.budget 1;
    let id = fresh b in
    Hashtbl.add b.schema_ids s id;
    Hashtbl.replace b.assigned id (build b (depth + 1) s);
    id

and intern_def b depth name =
  match Hashtbl.find_opt b.def_ids name with
  | Some id ->
    bump b id;
    id
  | None ->
    Obs.Budget.check_depth b.budget depth;
    Obs.Budget.burn b.budget 1;
    let id = fresh b in
    Hashtbl.add b.def_ids name id;
    let body = List.assoc name b.defs in
    (* register the body structurally too, so an inline copy of a
       definition shares its plan; ids are reserved before the
       recursive build, which is what admits reference cycles *)
    if not (Hashtbl.mem b.schema_ids body) then
      Hashtbl.add b.schema_ids body id;
    Hashtbl.replace b.assigned id (build b (depth + 1) body);
    id

and build b depth (s : Schema.t) =
  let type_mask = ref 0b1111 in
  let patterns = ref [] in
  let min_bound = ref min_int and max_bound = ref max_int in
  let multiples = ref [] in
  let min_props = ref 0 and max_props = ref max_int in
  let required = ref [] in
  let props = Hashtbl.create 8 in
  let prop_lists = ref [] in
  let pattern_props = ref [] in
  let additional = ref [] in
  let items = ref None and additional_items = ref None in
  let unique = ref false in
  let enums = ref [] in
  let any_of = ref [] and all_of = ref [] and nots = ref [] in
  List.iter
    (fun c ->
      match c with
      | Schema.C_type ty -> type_mask := !type_mask land type_bit ty
      | Schema.C_pattern e -> patterns := dfa b e :: !patterns
      | Schema.C_minimum i -> if i > !min_bound then min_bound := i
      | Schema.C_maximum i -> if i < !max_bound then max_bound := i
      | Schema.C_multiple_of i -> multiples := i :: !multiples
      | Schema.C_min_properties i -> if i > !min_props then min_props := i
      | Schema.C_max_properties i -> if i < !max_props then max_props := i
      | Schema.C_required ks -> required := List.rev_append ks !required
      | Schema.C_properties kvs ->
        List.iter
          (fun (k, ss) -> prop_lists := (k, intern b depth ss) :: !prop_lists)
          kvs
      | Schema.C_pattern_properties kvs ->
        List.iter
          (fun (e, ss) ->
            pattern_props := (dfa b e, intern b depth ss) :: !pattern_props)
          kvs
      | Schema.C_additional_properties ss ->
        additional := intern b depth ss :: !additional
      | Schema.C_items ss ->
        items := Some (Array.of_list (List.map (intern b depth) ss))
      | Schema.C_additional_items ss ->
        additional_items := Some (intern b depth ss)
      | Schema.C_unique_items -> unique := true
      | Schema.C_enum vs -> enums := enum_set vs :: !enums
      | Schema.C_any_of ss ->
        any_of := Array.of_list (List.map (intern b depth) ss) :: !any_of
      | Schema.C_all_of ss ->
        all_of := List.rev_append (List.map (intern b depth) ss) !all_of
      | Schema.C_not ss -> nots := intern b depth ss :: !nots
      | Schema.C_ref r -> all_of := intern_def b depth r :: !all_of)
    s;
  (* key-dispatch: every plan listed for a key applies (duplicate
     [properties] entries conjoin, exactly as the interpreter's
     pair-by-pair sweep does) *)
  List.iter
    (fun (k, id) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt props k) in
      Hashtbl.replace props k (id :: prev))
    !prop_lists;
  let props_arr = Hashtbl.create (Hashtbl.length props) in
  Hashtbl.iter (fun k ids -> Hashtbl.replace props_arr k (Array.of_list ids)) props;
  { type_mask = !type_mask;
    patterns = Array.of_list !patterns;
    min_bound = !min_bound;
    max_bound = !max_bound;
    multiples = Array.of_list !multiples;
    min_props = !min_props;
    max_props = !max_props;
    required = Array.of_list (List.sort_uniq String.compare !required);
    props = props_arr;
    pattern_props = Array.of_list (List.rev !pattern_props);
    additional = Array.of_list !additional;
    items = !items;
    additional_items = !additional_items;
    unique = !unique;
    enums = Array.of_list !enums;
    any_of = Array.of_list !any_of;
    all_of = Array.of_list !all_of;
    nots = Array.of_list !nots }

let compile ?(budget = Obs.Budget.unlimited) (doc : Schema.document) =
  (match Schema.well_formed doc with
  | Ok () -> ()
  | Error m -> invalid_arg ("Jschema.Validate.Plan.compile: " ^ m));
  Obs.Metrics.span "validate.compile" @@ fun () ->
  let b =
    { defs = doc.definitions;
      assigned = Hashtbl.create 64;
      schema_ids = Hashtbl.create 64;
      def_ids = Hashtbl.create 16;
      refs = Hashtbl.create 64;
      dfas = Hashtbl.create 16;
      count = 0;
      budget }
  in
  let root = intern b 0 doc.root in
  let nodes = Array.init b.count (fun i -> Hashtbl.find b.assigned i) in
  let shared = Array.init b.count (fun i -> !(Hashtbl.find b.refs i) >= 2) in
  Obs.Metrics.add "validate.plan.nodes" b.count;
  { nodes; shared; root }

(* ---- execution over trees ------------------------------------------------ *)

type state = { budget : Obs.Budget.t; memo : (int, bool) Hashtbl.t }

let enum_matches t n entries =
  let len = Array.length entries in
  len > 0
  &&
  let h = Tree.subtree_hash t n and sz = Tree.size t n in
  (* first index with (e_hash, e_size) >= (h, sz) *)
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let e = entries.(mid) in
    if e.e_hash < h || (e.e_hash = h && e.e_size < sz) then lo := mid + 1
    else hi := mid
  done;
  let rec scan i =
    i < len
    &&
    let e = entries.(i) in
    e.e_hash = h && e.e_size = sz
    && (Tree.equal_to_value t n e.e_value || scan (i + 1))
  in
  scan !lo

let rec exec p st t n id depth =
  if p.shared.(id) then begin
    let key = (n * Array.length p.nodes) + id in
    match Hashtbl.find_opt st.memo key with
    | Some cached ->
      Obs.Metrics.incr "validate.memo.hit";
      cached
    | None ->
      let b = compute p st t n id depth in
      Hashtbl.add st.memo key b;
      b
  end
  else compute p st t n id depth

and every p st t n plans depth =
  Array.for_all (fun pid -> exec p st t n pid depth) plans

and compute p st t n id depth =
  Obs.Budget.check_depth st.budget depth;
  Obs.Budget.burn st.budget 1;
  let d = depth + 1 in
  let nd = p.nodes.(id) in
  (match Tree.kind t n with
  | Tree.Kobj -> nd.type_mask land 0b0001 <> 0 && obj_ok p st t n d nd
  | Tree.Karr -> nd.type_mask land 0b0010 <> 0 && arr_ok p st t n d nd
  | Tree.Kstr s ->
    nd.type_mask land 0b0100 <> 0
    && Array.for_all (fun dfa -> Dfa.accepts dfa s) nd.patterns
  | Tree.Kint v ->
    nd.type_mask land 0b1000 <> 0
    && v >= nd.min_bound && v <= nd.max_bound
    && Array.for_all (fun i -> i <> 0 && v mod i = 0) nd.multiples)
  && Array.for_all (enum_matches t n) nd.enums
  && Array.for_all
       (fun group -> Array.exists (fun pid -> exec p st t n pid d) group)
       nd.any_of
  && every p st t n nd.all_of d
  && Array.for_all (fun pid -> not (exec p st t n pid d)) nd.nots

and obj_ok p st t n d nd =
  let keys = Tree.obj_keys t n and kids = Tree.child_ids t n in
  let arity = Array.length kids in
  arity >= nd.min_props && arity <= nd.max_props
  && Array.for_all (fun k -> Tree.lookup t n k <> None) nd.required
  &&
  (* one sweep over the members: key dispatch, pattern dispatch and
     additionalProperties coverage together *)
  let n_pats = Array.length nd.pattern_props in
  let member_ok k c =
    let plans = Hashtbl.find_opt nd.props k in
    (match plans with None -> true | Some ps -> every p st t c ps d)
    &&
    let rec pats j matched =
      if j >= n_pats then
        (* uncovered keys fall to additionalProperties (all of them) *)
        matched || plans <> None
        || Array.length nd.additional = 0
        || every p st t c nd.additional d
      else
        let re, pid = nd.pattern_props.(j) in
        if Dfa.accepts re k then exec p st t c pid d && pats (j + 1) true
        else pats (j + 1) matched
    in
    pats 0 false
  in
  let rec members i =
    i >= arity || (member_ok keys.(i) kids.(i) && members (i + 1))
  in
  members 0

and arr_ok p st t n d nd =
  let kids = Tree.child_ids t n in
  let len = Array.length kids in
  (match (nd.items, nd.additional_items) with
  | None, None -> true
  | None, Some a -> Array.for_all (fun c -> exec p st t c a d) kids
  | Some ss, add ->
    let k = Array.length ss in
    len >= k (* §5.1: the positions must exist *)
    && (let rec positions i =
          i >= k || (exec p st t kids.(i) ss.(i) d && positions (i + 1))
        in
        positions 0)
    && (len = k
       ||
       match add with
       | None -> false (* …and without additionalItems, nothing beyond *)
       | Some a ->
         let rec rest i =
           i >= len || (exec p st t kids.(i) a d && rest (i + 1))
         in
         rest k))
  && ((not nd.unique) || Jlogic.Jsl.check_unique t n)

let run_tree ?(budget = Obs.Budget.unlimited) p t =
  Obs.Metrics.incr "validate.plan.runs";
  let st = { budget; memo = Hashtbl.create 64 } in
  exec p st t Tree.root p.root 0

let run ?budget p v = run_tree ?budget p (Tree.of_value ?budget v)

(* ---- execution over the token stream ------------------------------------- *)

(* Same-node closure of a requested plan-id set: everything reachable
   through [anyOf]/[allOf]/[not] edges, which all constrain the {e
   same} value (property/item edges descend to children and are
   dispatched per member instead).  [Schema.well_formed] rejects
   non-modal reference cycles, so the closure is acyclic for every
   compilable document; the cycle flag is kept as a defensive fallback
   (a cyclic closure spills, reproducing [run_tree]'s divergence
   behavior instead of inventing a third semantics).  Ids are stored
   children-first (post-order), so one ascending sweep combines per-id
   verdicts with every same-node dependency already resolved. *)
type closure = {
  c_ids : int array;  (* post-order: same-node dependencies first *)
  c_slot : (int, int) Hashtbl.t;  (* plan id -> index into [c_ids] *)
  c_enum : bool;  (* some closure node carries [enum] *)
  c_unique : bool;  (* some closure node carries [uniqueItems] *)
  c_cyclic : bool;
}

let closure_of p requested =
  let slot = Hashtbl.create 8 in
  let order = ref [] in
  let count = ref 0 in
  let active = Hashtbl.create 8 in
  let cyclic = ref false in
  let enum = ref false and unique = ref false in
  let rec go id =
    if Hashtbl.mem active id then cyclic := true
    else if not (Hashtbl.mem slot id) then begin
      Hashtbl.add active id ();
      let nd = p.nodes.(id) in
      if Array.length nd.enums > 0 then enum := true;
      if nd.unique then unique := true;
      Array.iter (Array.iter go) nd.any_of;
      Array.iter go nd.all_of;
      Array.iter go nd.nots;
      Hashtbl.remove active id;
      Hashtbl.add slot id !count;
      incr count;
      order := id :: !order
    end
  in
  List.iter go requested;
  { c_ids = Array.of_list (List.rev !order);
    c_slot = slot;
    c_enum = !enum;
    c_unique = !unique;
    c_cyclic = !cyclic }

type stream_state = {
  s_budget : Obs.Budget.t;
  s_mode : [ `Strict | `Lenient ];
  s_lx : Lexer.t;
  s_closures : (int list, closure) Hashtbl.t;
    (* closures depend only on the requested set, which repeats for
       every element of a homogeneous array — cache them per run *)
}

let closure st p requested =
  match Hashtbl.find_opt st.s_closures requested with
  | Some c -> c
  | None ->
    let c = closure_of p requested in
    Hashtbl.add st.s_closures requested c;
    c

(* Scalar [enum] membership directly on the token's atom — the scalar
   cases never spill.  Candidate values come from [enum_set], which
   dropped anything not constructible as a tree, exactly like the
   tree-path comparison would. *)
let enum_has_int v entries =
  Array.exists
    (fun e -> match e.e_value with Value.Num m -> m = v | _ -> false)
    entries

let enum_has_str s entries =
  Array.exists
    (fun e ->
      match e.e_value with Value.Str t -> String.equal t s | _ -> false)
    entries

(* One streamed value against the plan-id set [requested] (sorted).
   Returns per-id verdicts for the whole same-node closure (spills
   return just [requested], which is all a caller ever reads).  The
   token handling mirrors [Tree.of_string_exn] member for member, so
   malformed documents render byte-identical errors through either
   engine; fuel is charged per streamed value ([1] parse unit plus one
   per active closure node), per skipped value ([1]) and per spilled
   value (the materialization's [2] plus [run_tree]'s per-(node, plan)
   unit), and the depth ceiling follows document nesting with the same
   positions as the parser. *)
let rec stream_value st p requested depth =
  let c = closure st p requested in
  let ids = c.c_ids in
  let n = Array.length ids in
  let pos, tok = Lexer.peek st.s_lx in
  Parser.guard ~units:(1 + n) st.s_budget pos depth;
  Obs.Metrics.incr "parse.values";
  let must_spill =
    c.c_cyclic
    ||
    match tok with
    | Lexer.Lbrace -> c.c_enum
    | Lexer.Lbracket -> c.c_enum || c.c_unique
    | _ -> false
  in
  if must_spill then spill st p requested depth
  else begin
    let nodes = p.nodes in
    let structural = Array.make n false in
    let scalar_int v =
      for i = 0 to n - 1 do
        let nd = nodes.(ids.(i)) in
        structural.(i) <-
          nd.type_mask land 0b1000 <> 0
          && v >= nd.min_bound && v <= nd.max_bound
          && Array.for_all (fun m -> m <> 0 && v mod m = 0) nd.multiples
          && Array.for_all (enum_has_int v) nd.enums
      done
    in
    let scalar_str s =
      for i = 0 to n - 1 do
        let nd = nodes.(ids.(i)) in
        structural.(i) <-
          nd.type_mask land 0b0100 <> 0
          && Array.for_all (fun dfa -> Dfa.accepts dfa s) nd.patterns
          && Array.for_all (enum_has_str s) nd.enums
      done
    in
    let pos, tok = Lexer.next st.s_lx in
    (match tok with
    | Lexer.Lbrace -> stream_obj st p c depth structural
    | Lexer.Lbracket -> stream_arr st p c depth structural
    | Lexer.Nat v -> scalar_int v
    | Lexer.String s -> scalar_str s
    | Lexer.Neg_int _ | Lexer.Float _ | Lexer.True | Lexer.False
    | Lexer.Null -> (
      match Parser.literal_atom st.s_mode pos tok with
      | Parser.Int v -> scalar_int v
      | Parser.Str s -> scalar_str s)
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof
      ->
      Parser.unexpected pos tok "a JSON value");
    (* combine across the same-node graph, children first *)
    let finals = Array.make n false in
    let fin pid = finals.(Hashtbl.find c.c_slot pid) in
    for i = 0 to n - 1 do
      let nd = nodes.(ids.(i)) in
      finals.(i) <-
        structural.(i)
        && Array.for_all (fun group -> Array.exists fin group) nd.any_of
        && Array.for_all fin nd.all_of
        && Array.for_all (fun pid -> not (fin pid)) nd.nots
    done;
    let tbl = Hashtbl.create (2 * n) in
    Array.iteri (fun i id -> Hashtbl.replace tbl id finals.(i)) ids;
    tbl
  end

(* A member/element's child obligations: the union of every closure
   node's dispatch for it is evaluated once ([per_slot] remembers which
   verdicts each closure node then reads back), or skipped outright when
   no active node constrains it. *)
and stream_child st p depth per_slot union union_n ok =
  if union_n = 0 then begin
    let before = Lexer.offset st.s_lx in
    Parser.skip_value st.s_mode st.s_budget st.s_lx (depth + 1);
    Obs.Metrics.add "validate.stream.skipped_bytes"
      (Lexer.offset st.s_lx - before)
  end
  else begin
    let ctbl = stream_value st p (List.sort_uniq compare union) (depth + 1) in
    Array.iteri
      (fun i pids ->
        if ok.(i) then
          ok.(i) <- List.for_all (fun pid -> Hashtbl.find ctbl pid) pids)
      per_slot
  end

and stream_obj st p c depth structural =
  let nodes = p.nodes in
  let ids = c.c_ids in
  let n = Array.length ids in
  let ok = Array.make n true in
  let seen = Hashtbl.create 8 in
  let arity = ref 0 in
  let member key =
    incr arity;
    let union = ref [] and union_n = ref 0 in
    let in_union = Hashtbl.create 8 in
    let add pid =
      if not (Hashtbl.mem in_union pid) then begin
        Hashtbl.add in_union pid ();
        union := pid :: !union;
        incr union_n
      end
    in
    let per_slot = Array.make n [] in
    for i = 0 to n - 1 do
      let nd = nodes.(ids.(i)) in
      let acc = ref [] in
      let named = ref false in
      (match Hashtbl.find_opt nd.props key with
      | Some ps ->
        named := true;
        Array.iter (fun pid -> acc := pid :: !acc) ps
      | None -> ());
      Array.iter
        (fun (re, pid) ->
          if Dfa.accepts re key then begin
            named := true;
            acc := pid :: !acc
          end)
        nd.pattern_props;
      if not !named then Array.iter (fun pid -> acc := pid :: !acc) nd.additional;
      per_slot.(i) <- !acc;
      List.iter add !acc
    done;
    stream_child st p depth per_slot !union !union_n ok
  in
  let rec members () =
    let pos, tok = Lexer.next st.s_lx in
    match tok with
    | Lexer.String key ->
      if Hashtbl.mem seen key then
        Parser.fail pos "duplicate object key %S" key;
      Hashtbl.add seen key ();
      let pos, tok = Lexer.next st.s_lx in
      if tok <> Lexer.Colon then Parser.unexpected pos tok "':'";
      member key;
      let pos, tok = Lexer.next st.s_lx in
      (match tok with
      | Lexer.Comma -> members ()
      | Lexer.Rbrace -> ()
      | _ -> Parser.unexpected pos tok "',' or '}'")
    | _ -> Parser.unexpected pos tok "a string key"
  in
  let _, tok = Lexer.peek st.s_lx in
  if tok = Lexer.Rbrace then ignore (Lexer.next st.s_lx) else members ();
  for i = 0 to n - 1 do
    let nd = nodes.(ids.(i)) in
    structural.(i) <-
      nd.type_mask land 0b0001 <> 0
      && ok.(i)
      && !arity >= nd.min_props && !arity <= nd.max_props
      && Array.for_all (Hashtbl.mem seen) nd.required
  done

and stream_arr st p c depth structural =
  let nodes = p.nodes in
  let ids = c.c_ids in
  let n = Array.length ids in
  let ok = Array.make n true in
  let len = ref 0 in
  let element () =
    let i = !len in
    incr len;
    let union = ref [] and union_n = ref 0 in
    let in_union = Hashtbl.create 8 in
    let add pid =
      if not (Hashtbl.mem in_union pid) then begin
        Hashtbl.add in_union pid ();
        union := pid :: !union;
        incr union_n
      end
    in
    let per_slot = Array.make n [] in
    for s = 0 to n - 1 do
      let nd = nodes.(ids.(s)) in
      let acc = ref [] in
      (match (nd.items, nd.additional_items) with
      | None, None -> ()
      | None, Some a -> acc := [ a ]
      | Some ss, add_items ->
        if i < Array.length ss then acc := [ ss.(i) ]
        else (
          match add_items with
          | None -> ok.(s) <- false (* §5.1: nothing beyond the tuple *)
          | Some a -> acc := [ a ]));
      per_slot.(s) <- !acc;
      List.iter add !acc
    done;
    stream_child st p depth per_slot !union !union_n ok
  in
  let rec elements () =
    element ();
    let pos, tok = Lexer.next st.s_lx in
    match tok with
    | Lexer.Comma -> elements ()
    | Lexer.Rbracket -> ()
    | _ -> Parser.unexpected pos tok "',' or ']'"
  in
  let _, tok = Lexer.peek st.s_lx in
  if tok = Lexer.Rbracket then ignore (Lexer.next st.s_lx) else elements ();
  for s = 0 to n - 1 do
    let nd = nodes.(ids.(s)) in
    let tuple_complete =
      match nd.items with
      | Some ss -> !len >= Array.length ss (* §5.1: positions must exist *)
      | None -> true
    in
    structural.(s) <- nd.type_mask land 0b0010 <> 0 && ok.(s) && tuple_complete
  done

(* Materialize exactly one subtree through the column builder and fall
   back to [run_tree] semantics on it — the bounded escape hatch for
   the keywords that genuinely need the whole subtree ([uniqueItems],
   [enum] deep equality) or a cyclic closure. *)
and spill st p requested depth =
  Obs.Metrics.incr "validate.stream.spills";
  let t =
    Tree.of_lexer_exn ~mode:st.s_mode ~base_depth:depth ~budget:st.s_budget
      st.s_lx
  in
  let est = { budget = st.s_budget; memo = Hashtbl.create 64 } in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun id ->
      if not (Hashtbl.mem tbl id) then
        Hashtbl.replace tbl id (exec p est t Tree.root id depth))
    requested;
  tbl

let run_lexer ?(budget = Obs.Budget.unlimited) ?(mode = `Strict) p lx =
  Obs.Metrics.incr "validate.stream.runs";
  let st =
    { s_budget = budget;
      s_mode = mode;
      s_lx = lx;
      s_closures = Hashtbl.create 16 }
  in
  let tbl = stream_value st p [ p.root ] 0 in
  let pos, tok = Lexer.next lx in
  if tok <> Lexer.Eof then Parser.unexpected pos tok "end of input";
  Hashtbl.find tbl p.root

let run_stream ?budget ?mode p input =
  run_lexer ?budget ?mode p (Lexer.create input)
