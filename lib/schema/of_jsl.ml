let any_of ss = [ Schema.C_any_of ss ]
let s_true : Schema.t = []

let repeat n (x : Schema.t) = List.init n (fun _ -> x)

(* an array of exactly [k] unconstrained elements *)
let exact_array k : Schema.t = [ Schema.C_type Schema.T_array; Schema.C_items (repeat k s_true) ]

let atoms : Schema.t list =
  [ [ Schema.C_type Schema.T_string ]; [ Schema.C_type Schema.T_number ] ]

let rec schema (f : Jlogic.Jsl.t) : Schema.t =
  match f with
  | Jlogic.Jsl.True -> s_true
  | Jlogic.Jsl.Not g -> [ Schema.C_not (schema g) ]
  | Jlogic.Jsl.And (a, b) -> [ Schema.C_all_of [ schema a; schema b ] ]
  | Jlogic.Jsl.Or (a, b) -> [ Schema.C_any_of [ schema a; schema b ] ]
  | Jlogic.Jsl.Var v -> [ Schema.C_ref v ]
  | Jlogic.Jsl.Test nt -> node_test nt
  | Jlogic.Jsl.Box_keys (e, g) -> [ Schema.C_pattern_properties [ (e, schema g) ] ]
  | Jlogic.Jsl.Dia_keys (e, g) ->
    (* ◇_e ϕ = ¬ □_e ¬ϕ, and a ◇ also rules out non-objects, which □'s
       vacuity would admit *)
    [ Schema.C_type Schema.T_object;
      Schema.C_not [ Schema.C_pattern_properties [ (e, [ Schema.C_not (schema g) ]) ] ]
    ]
  | Jlogic.Jsl.Box_range (i, j, g) -> box_range i j (schema g)
  | Jlogic.Jsl.Dia_range (i, j, g) ->
    [ Schema.C_type Schema.T_array;
      Schema.C_not (box_range i j [ Schema.C_not (schema g) ]) ]

(* arrays whose positions i..j (inclusive, possibly unbounded) all
   validate [s]; anything that is not an array, or an array too short
   to reach position i, passes vacuously *)
and box_range i j (s : Schema.t) : Schema.t =
  (* lengths 0 .. i: position i does not exist, so the box is vacuous *)
  let short = List.init (max (i + 1) 0) exact_array in
  let long =
    match j with
    | None ->
      [ [ Schema.C_type Schema.T_array;
          Schema.C_items (repeat i s_true);
          Schema.C_additional_items s ] ]
    | Some j ->
      (* exact lengths i+1 .. j: positions i..len-1 constrained *)
      let middles =
        List.init (max (j - i + 1) 0) (fun d ->
            let len = i + 1 + d in
            if len > j + 1 then []
            else
              [ Schema.C_type Schema.T_array;
                Schema.C_items (repeat i s_true @ repeat (len - i) s) ])
        |> List.filter (fun l -> l <> [])
      in
      let beyond =
        [ Schema.C_type Schema.T_array;
          Schema.C_items (repeat i s_true @ repeat (j - i + 1) s);
          Schema.C_additional_items s_true ]
      in
      middles @ [ beyond ]
  in
  any_of (([ Schema.C_type Schema.T_object ] :: atoms) @ short @ long)

and node_test (nt : Jlogic.Jsl.node_test) : Schema.t =
  match nt with
  | Jlogic.Jsl.Is_obj -> [ Schema.C_type Schema.T_object ]
  | Jlogic.Jsl.Is_arr -> [ Schema.C_type Schema.T_array ]
  | Jlogic.Jsl.Is_str -> [ Schema.C_type Schema.T_string ]
  | Jlogic.Jsl.Is_int -> [ Schema.C_type Schema.T_number ]
  | Jlogic.Jsl.Unique -> [ Schema.C_type Schema.T_array; Schema.C_unique_items ]
  | Jlogic.Jsl.Pattern e -> [ Schema.C_type Schema.T_string; Schema.C_pattern e ]
  | Jlogic.Jsl.Min i -> [ Schema.C_type Schema.T_number; Schema.C_minimum i ]
  | Jlogic.Jsl.Max i -> [ Schema.C_type Schema.T_number; Schema.C_maximum i ]
  | Jlogic.Jsl.Mult_of i -> [ Schema.C_type Schema.T_number; Schema.C_multiple_of i ]
  | Jlogic.Jsl.Min_ch i ->
    if i = 0 then s_true
    else
      any_of
        [ [ Schema.C_type Schema.T_object; Schema.C_min_properties i ];
          [ Schema.C_type Schema.T_array;
            Schema.C_items (repeat i s_true);
            Schema.C_additional_items s_true ] ]
  | Jlogic.Jsl.Max_ch i ->
    (* strings and numbers have 0 children and always qualify *)
    any_of
      (atoms
      @ [ [ Schema.C_type Schema.T_object; Schema.C_max_properties i ] ]
      @ List.init (i + 1) exact_array)
  | Jlogic.Jsl.Eq_doc v -> [ Schema.C_enum [ v ] ]

let document (r : Jlogic.Jsl_rec.t) : Schema.document =
  { Schema.definitions = List.map (fun (v, d) -> (v, schema d)) r.Jlogic.Jsl_rec.defs;
    root = schema r.Jlogic.Jsl_rec.base }
