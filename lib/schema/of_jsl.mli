(** Theorem 1 / Theorem 3, logic-to-schema direction: every JSL
    expression has an equivalent JSON Schema.

    Follows the constructions in the proof of Theorem 1, with two
    repairs the proof glosses over:

    - [MaxCh(i)] also holds at strings and numbers (0 children), so the
      [anyOf] gains the two atomic types;
    - index modalities must not constrain arrays too short to reach the
      range (□ is vacuous there), so the [anyOf] enumerates the exact
      shorter lengths — this is where numeric parameters written in
      binary blow up the schema, as the paper remarks before
      Proposition 7.

    [◇] forms are emitted as [not □ not].  Recursion symbols become
    [$ref]s (Theorem 3). *)

val schema : Jlogic.Jsl.t -> Schema.t
val document : Jlogic.Jsl_rec.t -> Schema.document
