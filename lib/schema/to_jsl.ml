module Value = Jsont.Value

let not_f f = Jlogic.Jsl.Not f
let guard_not_type ty f = Jlogic.Jsl.Or (Jlogic.Jsl.Not (Jlogic.Jsl.Test ty), f)

(* the complement of all keys covered by properties/patternProperties *)
let uncovered_keys (siblings : Schema.t) =
  let covered =
    List.concat_map
      (function
        | Schema.C_properties props ->
          List.map (fun (k, _) -> Rexp.Lang.literal k) props
        | Schema.C_pattern_properties pats ->
          List.map (fun (e, _) -> Rexp.Lang.of_syntax e) pats
        | _ -> [])
      siblings
  in
  let union = List.fold_left Rexp.Lang.union (Rexp.Lang.complement Rexp.Lang.all) covered in
  Rexp.Lang.extract_syntax (Rexp.Lang.complement union)

let rec schema ?siblings (s : Schema.t) : Jlogic.Jsl.t =
  let siblings = Option.value siblings ~default:s in
  (* items / additionalItems interact *)
  let items = List.filter_map (function Schema.C_items ss -> Some ss | _ -> None) s in
  let additional_items =
    List.filter_map (function Schema.C_additional_items a -> Some a | _ -> None) s
  in
  let items_formula =
    match (items, additional_items) with
    | [], [] -> []
    | [], adds ->
      (* all elements satisfy each a; vacuous on non-arrays *)
      List.map (fun a -> Jlogic.Jsl.Box_range (0, None, schema a)) adds
    | ss :: _, adds ->
      let n = List.length ss in
      let positions =
        List.mapi (fun i si -> Jlogic.Jsl.Dia_range (i, Some i, schema si)) ss
      in
      let beyond =
        match adds with
        | [] -> [ Jlogic.Jsl.Box_range (n, None, Jlogic.Jsl.ff) ] (* exactly n elements *)
        | adds -> List.map (fun a -> Jlogic.Jsl.Box_range (n, None, schema a)) adds
      in
      (* type-guarded: arrays only *)
      [ guard_not_type Jlogic.Jsl.Is_arr (Jlogic.Jsl.conj (positions @ beyond)) ]
  in
  let conjunct (c : Schema.conjunct) : Jlogic.Jsl.t option =
    match c with
    | Schema.C_items _ | Schema.C_additional_items _ -> None (* above *)
    | Schema.C_type Schema.T_object -> Some (Jlogic.Jsl.Test Jlogic.Jsl.Is_obj)
    | Schema.C_type Schema.T_array -> Some (Jlogic.Jsl.Test Jlogic.Jsl.Is_arr)
    | Schema.C_type Schema.T_string -> Some (Jlogic.Jsl.Test Jlogic.Jsl.Is_str)
    | Schema.C_type Schema.T_number -> Some (Jlogic.Jsl.Test Jlogic.Jsl.Is_int)
    | Schema.C_pattern e ->
      Some (guard_not_type Jlogic.Jsl.Is_str (Jlogic.Jsl.Test (Jlogic.Jsl.Pattern e)))
    | Schema.C_minimum i -> Some (guard_not_type Jlogic.Jsl.Is_int (Jlogic.Jsl.Test (Jlogic.Jsl.Min i)))
    | Schema.C_maximum i -> Some (guard_not_type Jlogic.Jsl.Is_int (Jlogic.Jsl.Test (Jlogic.Jsl.Max i)))
    | Schema.C_multiple_of i ->
      Some (guard_not_type Jlogic.Jsl.Is_int (Jlogic.Jsl.Test (Jlogic.Jsl.Mult_of i)))
    | Schema.C_min_properties i ->
      Some (guard_not_type Jlogic.Jsl.Is_obj (Jlogic.Jsl.Test (Jlogic.Jsl.Min_ch i)))
    | Schema.C_max_properties i ->
      Some (guard_not_type Jlogic.Jsl.Is_obj (Jlogic.Jsl.Test (Jlogic.Jsl.Max_ch i)))
    | Schema.C_required ks ->
      Some
        (guard_not_type Jlogic.Jsl.Is_obj
           (Jlogic.Jsl.conj (List.map (fun k -> Jlogic.Jsl.dia_key k Jlogic.Jsl.True) ks)))
    | Schema.C_properties props ->
      Some (Jlogic.Jsl.conj (List.map (fun (k, si) -> Jlogic.Jsl.box_key k (schema si)) props))
    | Schema.C_pattern_properties pats ->
      Some (Jlogic.Jsl.conj (List.map (fun (e, si) -> Jlogic.Jsl.Box_keys (e, schema si)) pats))
    | Schema.C_additional_properties a ->
      Some (Jlogic.Jsl.Box_keys (uncovered_keys siblings, schema a))
    | Schema.C_unique_items ->
      Some (guard_not_type Jlogic.Jsl.Is_arr (Jlogic.Jsl.Test Jlogic.Jsl.Unique))
    | Schema.C_any_of ss -> Some (Jlogic.Jsl.disj (List.map schema ss))
    | Schema.C_all_of ss -> Some (Jlogic.Jsl.conj (List.map schema ss))
    | Schema.C_not si -> Some (not_f (schema si))
    | Schema.C_enum vs ->
      Some (Jlogic.Jsl.disj (List.map (fun v -> Jlogic.Jsl.Test (Jlogic.Jsl.Eq_doc v)) vs))
    | Schema.C_ref r -> Some (Jlogic.Jsl.Var r)
  in
  Jlogic.Jsl.conj (items_formula @ List.filter_map conjunct s)

let document (doc : Schema.document) =
  let defs = List.map (fun (name, s) -> (name, schema s)) doc.definitions in
  match Jlogic.Jsl_rec.make ~defs ~base:(schema doc.root) with
  | Ok r -> r
  | Error m -> invalid_arg ("Jschema.To_jsl.document: " ^ m)
