module Value = Jsont.Value

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let partition_types vs =
  let nums = List.filter_map (function Value.Num n -> Some n | _ -> None) vs in
  let strs = List.filter_map (function Value.Str s -> Some s | _ -> None) vs in
  let arrs = List.filter_map (function Value.Arr l -> Some l | _ -> None) vs in
  let objs = List.filter_map (function Value.Obj l -> Some l | _ -> None) vs in
  (nums, strs, arrs, objs)

let infer_numbers ~strict nums : Schema.t =
  let lo = List.fold_left min max_int nums in
  let hi = List.fold_left max 0 nums in
  let divisor = List.fold_left gcd 0 nums in
  Schema.C_type Schema.T_number
  ::
  (if strict then
     [ Schema.C_minimum lo; Schema.C_maximum hi ]
     @ if divisor > 1 then [ Schema.C_multiple_of divisor ] else []
   else [])

let infer_strings strs : Schema.t =
  let distinct = List.sort_uniq String.compare strs in
  (* an enum only when the value set looks categorical *)
  if List.length distinct <= 4 && List.length strs >= 2 * List.length distinct
  then [ Schema.C_enum (List.map (fun s -> Value.Str s) distinct) ]
  else [ Schema.C_type Schema.T_string ]

let rec infer_values ~strict (vs : Value.t list) : Schema.t =
  let nums, strs, arrs, objs = partition_types vs in
  let branches =
    (if nums = [] then [] else [ infer_numbers ~strict nums ])
    @ (if strs = [] then [] else [ infer_strings strs ])
    @ (if arrs = [] then [] else [ infer_arrays ~strict arrs ])
    @ if objs = [] then [] else [ infer_objects ~strict objs ]
  in
  match branches with
  | [] -> invalid_arg "Jschema.Infer.infer: no examples"
  | [ s ] -> s
  | ss -> [ Schema.C_any_of ss ]

and infer_arrays ~strict (arrs : Value.t list list) : Schema.t =
  let elements = List.concat arrs in
  Schema.C_type Schema.T_array
  ::
  (if elements = [] then []
   else [ Schema.C_additional_items (infer_values ~strict elements) ])

and infer_objects ~strict (objs : (string * Value.t) list list) : Schema.t =
  let keys =
    List.sort_uniq String.compare (List.concat_map (List.map fst) objs)
  in
  let required =
    List.filter (fun k -> List.for_all (List.mem_assoc k) objs) keys
  in
  let properties =
    List.map
      (fun k ->
        let samples = List.filter_map (List.assoc_opt k) objs in
        (k, infer_values ~strict samples))
      keys
  in
  [ Schema.C_type Schema.T_object ]
  @ (if required = [] then [] else [ Schema.C_required required ])
  @ (if properties = [] then [] else [ Schema.C_properties properties ])
  @
  if strict && keys <> [] then [ Schema.C_additional_properties Schema.s_false ]
  else []

let infer ?(mode = `Loose) vs =
  if vs = [] then invalid_arg "Jschema.Infer.infer: no examples";
  infer_values ~strict:(mode = `Strict) vs

let infer_document ?mode vs = Schema.plain (infer ?mode vs)
