let map ?(jobs = 1) f items =
  Obs.Metrics.add "par.batch.docs" (Array.length items);
  Obs.Metrics.span "par.batch.run" (fun () ->
      let pool = Pool.create jobs in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.map pool f items))

let map_pool pool f items =
  Obs.Metrics.add "par.batch.docs" (Array.length items);
  Obs.Metrics.span "par.batch.run" (fun () -> Pool.map pool f items)
