(* A fixed-size domain pool: [lanes - 1] persistent worker domains plus
   the submitting caller, so a pool of [lanes] gives [lanes] lanes of
   parallelism while paying the domain-spawn cost once, not per batch.

   Scheduling inside {!map} is self-balancing: lanes pull the next item
   index off a shared [Atomic] counter, so skewed per-item costs (one
   huge document among many small ones) do not idle the other lanes.

   Observability: each lane runs under its own fresh {!Obs.Metrics}
   registry (installed via domain-local state), and the coordinator
   merges them into its own registry only after every lane has quiesced
   — counters and timings need no locking on the hot path yet sum to
   exactly the sequential totals. *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  lanes : int;
  stray : int Atomic.t;  (* task exceptions that escaped to the worker loop *)
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* Task bodies own their error handling (see [map]), so anything
       arriving here is a stray: count it — silently swallowing hides
       operator-grade failures forever.  Recoverable strays must not
       kill the worker domain; resource-corruption ones
       ([Out_of_memory], [Stack_overflow]) re-raise, ending this worker
       so the failure surfaces at the {!shutdown} join instead of
       looping over a corrupted stack or heap. *)
    (match task () with
    | () -> ()
    | exception e -> (
      Atomic.incr pool.stray;
      match e with
      | Out_of_memory | Stack_overflow -> raise e
      | _ -> ()));
    worker_loop pool
  end

let create lanes =
  let lanes = max 1 lanes in
  let pool =
    { mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
      lanes;
      stray = Atomic.make 0 }
  in
  pool.workers <-
    Array.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  Obs.Metrics.add "par.pool.domains" (lanes - 1);
  pool

let lanes pool = pool.lanes

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Par.Pool.submit: pool is shut down"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex

let stray_exn_count pool = Atomic.get pool.stray

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  (* join everything even if a worker died re-raising a non-recoverable
     stray; surface the first such death after the pool is quiesced *)
  let first_death = ref None in
  Array.iter
    (fun d ->
      match Domain.join d with
      | () -> ()
      | exception e -> if !first_death = None then first_death := Some e)
    pool.workers;
  pool.workers <- [||];
  (* stray totals land in the coordinator's registry exactly once, at
     the join — worker-domain registries are never merged on the
     [submit] path *)
  let n = Atomic.exchange pool.stray 0 in
  if n > 0 then Obs.Metrics.add "par.pool.stray_exn" n;
  match !first_death with Some e -> raise e | None -> ()

let map pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let active = min pool.lanes n in
    let registries =
      Array.init active (fun _ -> Obs.Metrics.create_registry ())
    in
    let remaining = Atomic.make active in
    let fin_mutex = Mutex.create () in
    let fin = Condition.create () in
    let lane l () =
      Obs.Metrics.with_registry registries.(l) (fun () ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (* after a failure, drain the remaining indices without
                 touching [f]: the batch is lost anyway *)
              (if Atomic.get failure = None then
                 match f items.(i) with
                 | v -> results.(i) <- Some v
                 | exception e ->
                   ignore (Atomic.compare_and_set failure None (Some e)));
              loop ()
            end
          in
          loop ());
      Mutex.lock fin_mutex;
      if Atomic.fetch_and_add remaining (-1) = 1 then Condition.broadcast fin;
      Mutex.unlock fin_mutex
    in
    for l = 1 to active - 1 do
      submit pool (lane l)
    done;
    (* the caller is lane 0: it works instead of blocking *)
    lane 0 ();
    Mutex.lock fin_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait fin fin_mutex
    done;
    Mutex.unlock fin_mutex;
    (* all lanes have quiesced: merging their registries races with
       nothing *)
    Array.iter Obs.Metrics.merge registries;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
