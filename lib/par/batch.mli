(** Batch evaluation: shard an array of independent documents across
    domains.

    The unit of work is one whole document (parse, evaluate, render) —
    coarse enough that coordination cost vanishes against it, and no
    shared mutable state crosses lanes: each document must get its own
    {!Obs.Budget.t} (fueled budgets are mutable) and lanes record into
    private metric registries merged at the join.

    Determinism: results come back in input order regardless of lane
    count, and metric totals are independent of [jobs] — the agreement
    the differential tests and the CI gate pin down.

    Counters: [par.batch.docs] (documents submitted), span
    [par.batch.run]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] maps [f] over [items] on a throwaway
    [jobs]-lane {!Pool} (joined before returning).  [jobs <= 1] runs on
    the caller's domain alone.  First exception re-raised after the
    join. *)

val map_pool : Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map} on an existing pool — for repeated batches amortizing
    domain spawns. *)
