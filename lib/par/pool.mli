(** Fixed-size domain pool.

    A pool of [lanes] executes work on [lanes - 1] persistent worker
    domains {e plus the calling domain} — the caller of {!map}
    participates instead of blocking, so [create 1] spawns no domains
    at all and degenerates to sequential execution.

    Per-lane {!Obs.Metrics} registries isolate instrumentation during a
    {!map} and are merged into the caller's registry at the join, so
    counter and timing totals equal the sequential run's exactly.
    Counter [par.pool.domains] accumulates domains spawned. *)

type t
(** A pool handle.  Not itself thread-safe: drive a given pool from one
    coordinating domain. *)

val create : int -> t
(** [create lanes] spawns [max 1 lanes - 1] worker domains.  Keep
    [lanes] at or below [Domain.recommended_domain_count ()]. *)

val lanes : t -> int
(** Lane count, including the caller's lane. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] is [Array.map f items] with items distributed
    dynamically over the pool's lanes (shared-counter self-scheduling,
    so skewed item costs still balance).  Blocks until every item is
    done.  If any [f] raises, the first exception (in completion order)
    is re-raised in the caller after all lanes quiesce; remaining items
    are skipped.  [f] must not use the pool it runs on. *)

val submit : t -> (unit -> unit) -> unit
(** Low-level: enqueue one task for a worker domain.  Tasks should
    handle their own errors — prefer {!map}.  A task exception that
    escapes to the worker loop is a {e stray}: it is counted
    ({!stray_exn_count}, folded into counter [par.pool.stray_exn] at
    {!shutdown}), then dropped if recoverable, or re-raised — killing
    that worker so the failure surfaces at the {!shutdown} join — when
    it is [Out_of_memory] or [Stack_overflow].  @raise Invalid_argument
    after {!shutdown}. *)

val stray_exn_count : t -> int
(** Task exceptions that have escaped to the worker loop so far (reset
    to zero when {!shutdown} folds the total into the coordinator's
    [par.pool.stray_exn] counter). *)

val shutdown : t -> unit
(** Drain the queue, join every worker domain.  Idempotent.  The pool
    rejects {!submit}/{!map} afterwards.  Re-raises the first
    non-recoverable stray exception that killed a worker, after all
    workers have been joined. *)
