(* Log analytics: JSONPath (the language of [15], §4.1) compiled to
   recursive non-deterministic JNL, over a nested event log.

   Run with: dune exec examples/log_analytics.exe *)

module Value = Jsont.Value

let log_doc =
  Jsont.Parser.parse_exn
    {|{
      "service": "checkout",
      "window": { "from": 1700000000, "to": 1700003600 },
      "events": [
        { "kind": "request", "status": 200, "ms": 12,
          "ctx": { "user": "sue", "retries": 0 } },
        { "kind": "request", "status": 500, "ms": 433,
          "ctx": { "user": "john", "retries": 2,
                   "cause": { "kind": "timeout", "upstream": "payments" } } },
        { "kind": "gc", "pause_ms": 7 },
        { "kind": "request", "status": 200, "ms": 55,
          "ctx": { "user": "ana", "retries": 1 } },
        { "kind": "request", "status": 503, "ms": 914,
          "ctx": { "user": "li", "retries": 3,
                   "cause": { "kind": "overload", "upstream": "inventory",
                              "cause": { "kind": "timeout", "upstream": "db" } } } }
      ]
    }|}

let show name path =
  match Jquery.Jsonpath.select log_doc path with
  | Error m -> Printf.printf "%-44s error: %s\n" name m
  | Ok hits ->
    Printf.printf "%-44s %s\n" name
      (String.concat ", " (List.map Value.to_string hits))

let () =
  Printf.printf "JSONPath over a %d-value event log\n\n" (Value.size log_doc);
  show "all event kinds ($.events[*].kind)" "$.events[*].kind";
  show "first event status" "$.events[0].status";
  show "last event's user" "$.events[-1].ctx.user";
  show "statuses of events 1..3 (slice)" "$.events[1:4].status";
  show "all users anywhere ($..user)" "$..user";
  show "all upstreams, any nesting ($..upstream)" "$..upstream";
  show "root causes ($..cause.kind)" "$..cause.kind";
  show "events with retries>2 (filter)"
    {|$.events[*][?(eq(.ctx.retries, 3))].ctx.user|};
  show "window bounds ($.window.*)" "$.window.*";

  (* what the compilation produces: JSONPath is literally JNL *)
  let path = Jquery.Jsonpath.parse_exn "$..cause.kind" in
  Printf.printf "\n$..cause.kind compiles to the JNL path:\n  %s\n"
    (Jlogic.Jnl.path_to_string path);
  let frag = Jlogic.Jnl.classify_path path in
  Printf.printf "fragment: deterministic=%b recursive=%b\n"
    frag.Jlogic.Jnl.deterministic frag.Jlogic.Jnl.recursive;

  (* the same question as a pure JNL satisfaction test *)
  let has_deep_timeout =
    Jlogic.Jnl.parse_exn
      {|<.events[0:*]?(eq((.ctx)(.cause)*.kind, "timeout"))>|}
  in
  Printf.printf "\nsome event has a (possibly nested) timeout cause: %b\n"
    (Jlogic.Jnl_eval.satisfies log_doc has_deep_timeout)
