(* Schema migration: static analysis of schema evolution with the
   satisfiability machinery (Propositions 7/10 — the paper argues
   satisfiability matters precisely for tasks like this).

   Given schema v1 and a proposed v2, we ask: is some document valid
   under v1 but not under v2?  That is the satisfiability of
   (v1 ∧ ¬v2) in JSL — a *breaking-change detector* with
   counterexample documents.

   Run with: dune exec examples/schema_migration.exe *)

open Jlogic

let v1_text =
  {|{
    "type": "object",
    "required": ["id", "name"],
    "properties": {
      "id":   { "type": "number" },
      "name": { "type": "string" },
      "tags": { "type": "array", "additionalItems": { "type": "string" } }
    }
  }|}

(* v2 tightens things: ids get an upper bound, tags must be unique, and
   a new required field appears *)
let v2_text =
  {|{
    "type": "object",
    "required": ["id", "name", "version"],
    "properties": {
      "id":   { "type": "number", "maximum": 999999 },
      "name": { "type": "string" },
      "version": { "type": "number", "minimum": 2 },
      "tags": { "type": "array", "uniqueItems": true,
                "additionalItems": { "type": "string" } }
    }
  }|}

let formula_of text =
  (Jschema.To_jsl.document (Jschema.Parse.of_string_exn text)).Jsl_rec.base

let breaking_change ~from_ ~to_ =
  Contain.schema_compatible ~old_:(formula_of from_) ~new_:(formula_of to_) ()

let () =
  print_endline "v1 -> v2 migration analysis";
  (match breaking_change ~from_:v1_text ~to_:v2_text with
  | Contain.No witness ->
    print_endline "BREAKING: a v1-valid document is rejected by v2, e.g.";
    print_endline (Jsont.Printer.pretty witness)
  | Contain.Yes -> print_endline "compatible: every v1 document validates under v2"
  | Contain.Inconclusive m -> Printf.printf "inconclusive: %s\n" m);

  (* the reverse direction: is v2 strictly stricter, or also looser
     somewhere? *)
  print_endline "\nv2 -> v1 (does v2 admit documents v1 rejected?)";
  (match breaking_change ~from_:v2_text ~to_:v1_text with
  | Contain.No witness ->
    print_endline "yes — v2 admits documents outside v1, e.g.";
    print_endline (Jsont.Printer.pretty witness)
  | Contain.Yes -> print_endline "no — v2 ⊆ v1 (a pure tightening)"
  | Contain.Inconclusive m -> Printf.printf "inconclusive: %s\n" m);

  (* sanity: a vacuous migration is reported as compatible *)
  print_endline "\nv1 -> v1 (sanity)";
  match breaking_change ~from_:v1_text ~to_:v1_text with
  | Contain.Yes -> print_endline "compatible, as expected"
  | Contain.No w -> Printf.printf "unexpected witness: %s\n" (Jsont.Value.to_string w)
  | Contain.Inconclusive m -> Printf.printf "inconclusive: %s\n" m
