(* Documenting APIs (§6): the paper's third future-work area, end to
   end — infer a schema from observed API responses, validate new
   traffic against it, check a proposed evolution for breaking changes,
   and generate fresh example documents from the schema.

   Run with: dune exec examples/open_api.exe *)

open Jlogic
module Value = Jsont.Value

let observed_responses =
  List.map Jsont.Parser.parse_exn
    [ {|{"status":"ok","user":{"id":17,"name":"Sue"},"latency_ms":12}|};
      {|{"status":"ok","user":{"id":42,"name":"John"},"latency_ms":48}|};
      {|{"status":"error","code":503,"latency_ms":3}|};
      {|{"status":"ok","user":{"id":7,"name":"Ana"},"latency_ms":30}|};
      {|{"status":"error","code":404,"latency_ms":1}|} ]

let () =
  (* 1. Learn a schema from the traffic (the §5.2 "learn JSON Schemas
        from examples" motivation). *)
  let inferred = Jschema.Infer.infer_document observed_responses in
  print_endline "schema inferred from 5 observed responses:";
  print_endline (Jsont.Printer.pretty (Jschema.Schema.to_value inferred));

  (* 2. Validate fresh traffic. *)
  let fresh =
    List.map Jsont.Parser.parse_exn
      [ {|{"status":"ok","user":{"id":3,"name":"Li"},"latency_ms":9}|};
        {|{"status":"melted","latency_ms":9}|};
        {|{"status":"ok","latency_ms":"fast"}|} ]
  in
  print_endline "\nvalidating fresh traffic:";
  List.iter
    (fun d ->
      Printf.printf "  %-60s %s\n" (Value.to_string d)
        (if Jschema.Validate.validates inferred d then "valid" else "INVALID"))
    fresh;

  (* 3. The API evolves: status becomes an enum, latency gets a bound.
        Is the documented contract still honoured by old producers? *)
  let v2 =
    Jschema.Parse.of_string_exn
      {|{
        "type": "object",
        "required": ["status", "latency_ms"],
        "properties": {
          "status": { "enum": ["ok", "error"] },
          "latency_ms": { "type": "number", "maximum": 1000 },
          "user": { "type": "object", "required": ["id", "name"] },
          "code": { "type": "number" }
        }
      }|}
  in
  let base doc = (Jschema.To_jsl.document doc).Jsl_rec.base in
  print_endline "\ninferred -> v2 compatibility:";
  (match Contain.schema_compatible ~old_:(base inferred) ~new_:(base v2) () with
  | Contain.Yes -> print_endline "  compatible — v2 accepts everything the inferred contract allows"
  | Contain.No w ->
    print_endline "  BREAKING — allowed by the inferred contract, rejected by v2:";
    Printf.printf "  %s\n" (Value.to_string w)
  | Contain.Inconclusive m -> Printf.printf "  inconclusive: %s\n" m);

  (* 4. Generate documentation examples straight from the schema. *)
  print_endline "\ngenerated examples for the v2 docs:";
  List.iter
    (fun v -> Printf.printf "  %s\n" (Value.to_string v))
    (Jsl_sat.models ~limit:3 (base v2));

  (* 5. And the round trip the paper emphasises: the schema is a JSON
        document, so it can itself be validated/queried. *)
  let as_json = Jschema.Schema.to_value v2 in
  Printf.printf "\nthe v2 schema is itself a %d-value JSON document; "
    (Value.size as_json);
  Printf.printf "its property names: %s\n"
    (String.concat ", "
       (List.map Value.to_string (Jquery.Jsonpath.select_exn as_json "$.properties.*.type")))
