(* Quickstart: the paper's running example end to end.

   Parses the Figure 1 document, shows the §3.1 tree model, runs JSON
   navigation instructions (§2), JNL queries (§4), JSL validation (§5)
   and JSON Schema validation through the Theorem 1 translation.

   Run with: dune exec examples/quickstart.exe *)

module Value = Jsont.Value
module Tree = Jsont.Tree
open Jlogic

let () =
  (* 1. Parse the document of Figure 1. *)
  let doc =
    Jsont.Parser.parse_exn
      {|{
        "name": { "first": "John", "last": "Doe" },
        "age": 32,
        "hobbies": ["fishing", "yoga"]
      }|}
  in
  print_endline "Figure 1 document:";
  print_endline (Jsont.Printer.pretty doc);

  (* 2. The JSON tree model: every node is itself a JSON document. *)
  let tree = Tree.of_value doc in
  Printf.printf "\nTree: %d nodes, height %d\n" (Tree.node_count tree)
    (Tree.height tree);
  Seq.iter
    (fun n -> Format.printf "  %a@." (Tree.pp_node tree) n)
    (Tree.nodes tree);

  (* 3. Navigation instructions: J[key] and J[i]. *)
  let get p = Option.get (Jsont.Pointer.get (Jsont.Pointer.of_string_exn p) doc) in
  Printf.printf "\nJ[name][first] = %s\n" (Value.to_string (get "name.first"));
  Printf.printf "J[hobbies][1]  = %s\n" (Value.to_string (get "hobbies[1]"));
  Printf.printf "J[hobbies][-1] = %s\n" (Value.to_string (get "hobbies[-1]"));

  (* 4. JNL: the navigational logic, in concrete syntax. *)
  let queries =
    [ "eq(.name.first, \"John\")";
      "eq(.age, 32)";
      "<.hobbies[0:*]?(eq(eps,\"yoga\"))>";
      "eq(.name, {\"last\":\"Doe\",\"first\":\"John\"})";
      "!<.email>" ]
  in
  print_endline "\nJNL queries at the root:";
  List.iter
    (fun q ->
      Printf.printf "  %-45s %b\n" q (Jnl_eval.satisfies doc (Jnl.parse_exn q)))
    queries;

  (* 5. JSL: the schema logic. *)
  let person_shape =
    Jsl.conj
      [ Jsl.Test Jsl.Is_obj;
        Jsl.dia_key "name" (Jsl.dia_key "first" (Jsl.Test Jsl.Is_str));
        Jsl.dia_key "age" (Jsl.And (Jsl.Test (Jsl.Min 0), Jsl.Test (Jsl.Max 150)));
        Jsl.dia_key "hobbies" (Jsl.And (Jsl.Test Jsl.Is_arr, Jsl.Test Jsl.Unique)) ]
  in
  Printf.printf "\nJSL validation: %b\n" (Jsl.validates doc person_shape);

  (* 6. JSON Schema: same constraint as a schema document, validated
        both directly and through the Theorem 1 translation. *)
  let schema =
    Jschema.Parse.of_string_exn
      {|{
        "type": "object",
        "required": ["name", "age"],
        "properties": {
          "name": { "type": "object", "required": ["first"] },
          "age": { "type": "number", "minimum": 0, "maximum": 150 },
          "hobbies": { "type": "array", "uniqueItems": true,
                       "items": [{"type":"string"}, {"type":"string"}] }
        }
      }|}
  in
  Printf.printf "Schema validation (direct):  %b\n"
    (Jschema.Validate.validates schema doc);
  Printf.printf "Schema validation (via JSL): %b\n"
    (Jsl_rec.validates doc (Jschema.To_jsl.document schema));

  (* 7. And the schema is itself a JSON document. *)
  print_endline "\nThe schema, as JSON:";
  print_endline (Jsont.Printer.pretty (Jschema.Schema.to_value schema))
