(* Streaming validation: the §6 conjecture in action.  A JSON-lines
   feed is validated against a deterministic JSL schema without
   building any tree — memory stays bounded by the formula, not the
   documents.

   Run with: dune exec examples/streaming_validation.exe *)

module Value = Jsont.Value
open Jlogic

let () =
  (* the shape every event must have *)
  let event_schema =
    Jsl.conj
      [ Jsl.Test Jsl.Is_obj;
        Jsl.dia_key "kind" (Jsl.Test Jsl.Is_str);
        Jsl.dia_key "seq" (Jsl.Test (Jsl.Min 0));
        Jsl.box_key "payload" (Jsl.Test (Jsl.Min_ch 0)) ]
  in
  (match Stream.supported event_schema with
  | Ok () -> print_endline "schema is in the streamable deterministic fragment"
  | Error m -> failwith ("not streamable: " ^ m));

  (* build a feed: 1000 events, a few malformed *)
  let rng = Jworkload.Prng.create 99 in
  let event i =
    let base =
      [ ("kind", Value.Str (Jworkload.Prng.choose rng [ "click"; "view"; "buy" ]));
        ("seq", Value.Num i);
        ("payload", Jworkload.Gen_json.sized rng 40) ]
    in
    if i mod 97 = 0 then Value.Obj (List.remove_assoc "kind" base) (* corrupt *)
    else Value.Obj base
  in
  let feed = List.init 1000 event in
  let lines = List.map Value.to_string feed in
  let bytes = List.fold_left (fun acc l -> acc + String.length l) 0 lines in
  Printf.printf "feed: %d events, %d bytes\n" (List.length lines) bytes;

  (* stream-validate every line *)
  let valid = ref 0 and invalid = ref 0 and peak = ref 0 in
  let t0 = Sys.time () in
  List.iter
    (fun line ->
      match Stream.validate_with_stats line event_schema with
      | Ok (true, stats) ->
        incr valid;
        if stats.Stream.peak_obligations > !peak then
          peak := stats.Stream.peak_obligations
      | Ok (false, stats) ->
        incr invalid;
        if stats.Stream.peak_obligations > !peak then
          peak := stats.Stream.peak_obligations
      | Error m -> Printf.printf "lex/parse error: %s\n" m)
    lines;
  let dt = Sys.time () -. t0 in
  Printf.printf "valid=%d invalid=%d  (%d corrupted on purpose)\n" !valid !invalid
    (List.length (List.filter (fun i -> i mod 97 = 0) (List.init 1000 Fun.id)));
  Printf.printf "throughput: %.1f MB/s, peak live obligations: %d\n"
    (float_of_int bytes /. 1e6 /. dt)
    !peak;

  (* constants: even a single huge document needs no proportional memory *)
  let huge =
    Value.Obj
      [ ("kind", Value.Str "bulk");
        ("seq", Value.Num 1);
        ("payload", Jworkload.Gen_json.sized (Jworkload.Prng.create 1) 200_000) ]
  in
  match Stream.validate_with_stats (Value.to_string huge) event_schema with
  | Ok (ok, stats) ->
    Printf.printf
      "\n200k-value document: valid=%b, %d tokens, peak obligations still %d\n" ok
      stats.Stream.tokens stats.Stream.peak_obligations
  | Error m -> print_endline m
