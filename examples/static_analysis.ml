(* Static analysis: the satisfiability-powered toolbox — containment,
   equivalence, simplification, structural diff, and a look inside the
   Proposition 1 datalog compilation.

   Run with: dune exec examples/static_analysis.exe *)

open Jlogic
module Value = Jsont.Value

let () =
  (* 1. Query containment with counterexamples. *)
  let adults = Jsl.parse_exn "dia(/age/)(Int & Min(18))" in
  let people = Jsl.parse_exn "dia(/age/)Int & dia(/name/)Str" in
  print_endline "containment analysis:";
  (match Contain.contained (Jsl.And (adults, people)) people with
  | Contain.Yes -> print_endline "  adults∧people ⊑ people           yes"
  | _ -> print_endline "  unexpected!");
  (match Contain.contained people adults with
  | Contain.No w ->
    Printf.printf "  people ⊑ adults                  no, e.g. %s\n"
      (Value.to_string w)
  | _ -> print_endline "  unexpected!");
  (match Contain.disjoint (Jsl.parse_exn "Str") (Jsl.parse_exn "MinCh(1)") with
  | Contain.Yes -> print_endline "  Str disjoint from MinCh(1)      yes (atoms are leaves)"
  | _ -> print_endline "  unexpected!");

  (* 2. Simplification: machine-generated formulas get readable. *)
  let noisy =
    Jsl.parse_exn
      "!!(dia(/k/)true & true) | (Str & Int) | box(/missing/)true | dia[5:2]Str"
  in
  Printf.printf "\nsimplify:\n  before: %s\n  after:  %s\n" (Jsl.to_string noisy)
    (Jsl.to_string (Simplify.jsl noisy));
  let noisy_jnl = Jnl.parse_exn "<eps eps .a eps> & !!true" in
  Printf.printf "  before: %s\n  after:  %s\n"
    (Jnl.to_string noisy_jnl)
    (Jnl.to_string (Simplify.jnl noisy_jnl));

  (* 3. Structural diff between document revisions. *)
  let v1 =
    Jsont.Parser.parse_exn
      {|{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}|}
  in
  let v2 =
    Jsont.Parser.parse_exn
      {|{"name":{"first":"John","last":"Doe","title":"Dr"},"age":33,"hobbies":["fishing"]}|}
  in
  print_endline "\ndocument diff v1 -> v2:";
  let script = Jsont.Diff.diff v1 v2 in
  Format.printf "%a@." Jsont.Diff.pp script;
  (match Jsont.Diff.apply script v1 with
  | Ok v when Value.equal v v2 -> print_endline "patch verified: apply(diff) = v2"
  | _ -> print_endline "patch failed!");

  (* 4. The Proposition 1 machinery, visible: a deterministic JNL query
        as a non-recursive monadic datalog program. *)
  let phi = Jnl.parse_exn {|eq(.name.first, "John") & !<.archived>|} in
  let tree = Jsont.Tree.of_value v1 in
  let edb = Jdatalog.Edb.of_tree tree in
  let program = Jdatalog.Compile.jnl edb phi in
  Format.printf "@.the query  %s@.compiles to:@.%a@." (Jnl.to_string phi)
    Jdatalog.Ast.pp_program program;
  Printf.printf "monadic=%b recursive=%b\n"
    (Jdatalog.Ast.is_monadic program)
    (Jdatalog.Ast.is_recursive program);
  match Jdatalog.Engine.query_nodes edb program with
  | Ok nodes ->
    Printf.printf "satisfied at %d node(s); at the root: %b\n" (List.length nodes)
      (List.mem Jsont.Tree.root nodes)
  | Error m -> print_endline m
