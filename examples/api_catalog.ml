(* API catalog: MongoDB-style find over a synthetic user/order
   collection — the Web-API use case motivating §1 and Example 1 of the
   paper, including the projection argument discussed as future work in
   §6.

   Run with: dune exec examples/api_catalog.exe *)

module Value = Jsont.Value

let () =
  (* a collection of user records as an API would return them *)
  let rng = Jworkload.Prng.create 20260704 in
  let users = List.init 200 (fun _ -> Jworkload.Gen_json.api_record rng 4) in
  Printf.printf "collection: %d user records, %d JSON values total\n\n"
    (List.length users)
    (List.fold_left (fun acc u -> acc + Value.size u) 0 users);

  let find name filter_text =
    let filter = Jquery.Mongo.parse_string_exn filter_text in
    let hits = Jquery.Mongo.find filter users in
    Printf.printf "%-60s %4d hits\n" name (List.length hits);
    hits
  in

  (* Example 1 of the paper: find({name: {$eq: "Sue"}}, {}) *)
  let sues = find {|find {name.first: "Sue"}|} {|{"name.first": "Sue"}|} in

  (* more involved filters *)
  ignore (find {|adults in yoga|}
            {|{"age": {"$gte": 18}, "hobbies": {"$elemMatch": {"$eq": "yoga"}}}|});
  ignore (find {|big spenders (some order > 400)|}
            {|{"orders": {"$elemMatch": {"total": {"$gt": 400}}}}|});
  ignore (find {|exactly 3 hobbies|} {|{"hobbies": {"$size": 3}}|});
  ignore (find {|shipped or delivered first order|}
            {|{"orders.0.status": {"$in": ["shipped", "delivered"]}}|});
  ignore (find {|SKU pattern match|}
            {|{"orders": {"$elemMatch":
                {"lines": {"$elemMatch": {"sku": {"$regex": "SKU-0-"}}}}}}|});

  (* every filter is a JSL formula — print one *)
  let filter = Jquery.Mongo.parse_string_exn {|{"age": {"$gte": 18}}|} in
  Printf.printf "\nthe filter {age: {$gte: 18}} as JSL:  %s\n"
    (Jlogic.Jsl.to_string (Jquery.Mongo.to_jsl filter));

  (* equality filters reach pure JNL (Theorem 2) *)
  (match Jquery.Mongo.to_jnl (Jquery.Mongo.parse_string_exn {|{"name.first":"Sue"}|}) with
  | Ok jnl ->
    Printf.printf "the filter {name.first: \"Sue\"} as JNL: %s\n"
      (Jlogic.Jnl.to_string jnl)
  | Error m -> Printf.printf "JNL translation failed: %s\n" m);

  (* projection — the §6 future-work transformation *)
  let projection =
    match
      Jquery.Mongo.parse_projection
        (Jsont.Parser.parse_exn {|{"name.first": 1, "age": 1}|})
    with
    | Ok p -> p
    | Error m -> failwith m
  in
  print_endline "\nfirst Sue, projected to {name.first, age}:";
  match sues with
  | sue :: _ ->
    print_endline (Jsont.Printer.pretty (Jquery.Mongo.project projection sue))
  | [] -> print_endline "(no Sue in this seed's collection)"
