(* jsonlogic — command-line front end to the library.

   Subcommands:
     parse      parse and pretty-print a JSON document
     eval       evaluate a JNL formula at the root of a document
     select     select subdocuments with a JSONPath expression
     find       filter a collection with a MongoDB-style filter
     aggregate  run a MongoDB-style aggregation pipeline over a collection
     validate   validate documents against a JSON Schema
     sat        decide satisfiability of a JNL formula (with witness)
     compat     detect breaking changes between two schemas *)

open Cmdliner

let read_input = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_bin path In_channel.input_all

(* ---- resource budgets and metrics (shared flags) --------------------------- *)

type obs_opts = {
  budget : Obs.Budget.t;
  fresh_budget : unit -> Obs.Budget.t;
      (* budgets are mutable when fueled/deadlined, so concurrent
         documents must not share one: batch mode draws a fresh budget
         with the same limits per document *)
  metrics : bool;
  use_index : bool;
  jobs : int;
}

let obs_term =
  let max_depth =
    Arg.(value & opt int Obs.Budget.default_max_depth
         & info [ "max-depth" ] ~docv:"N"
             ~doc:"Recursion/nesting depth ceiling; deeper input or formulas \
                   fail with a budget error instead of a stack overflow.")
  in
  let fuel =
    Arg.(value & opt (some int) None
         & info [ "fuel" ] ~docv:"N"
             ~doc:"Total work allowance in node visits; when spent, the \
                   command stops with a budget error.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Wall-clock deadline in milliseconds, checked while work is \
                   performed.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Record per-phase timings and per-construct counters and \
                   print them to stderr on exit.")
  in
  let no_index =
    Arg.(value & flag
         & info [ "no-index" ]
             ~doc:"Disable the per-tree label index and evaluate navigation \
                   steps by sweeping all nodes (the indexed and swept \
                   strategies compute the same sets; this is the escape hatch \
                   and comparison baseline).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domains to shard batch work across (only used by \
                   commands in $(b,--files-from) batch mode; results are \
                   deterministic and in input order regardless).")
  in
  let make max_depth fuel timeout_ms metrics no_index jobs =
    if metrics then begin
      Obs.Metrics.set_enabled true;
      (* commands may [exit] from several places; dump on whichever *)
      at_exit (fun () -> prerr_string (Obs.Metrics.dump_text ()))
    end;
    let fresh_budget () = Obs.Budget.create ?fuel ~max_depth ?timeout_ms () in
    { budget = fresh_budget ();
      fresh_budget;
      metrics;
      use_index = not no_index;
      jobs = max 1 jobs }
  in
  Term.(const make $ max_depth $ fuel $ timeout_ms $ metrics $ no_index $ jobs)

let parse_doc_exn ?budget text =
  Obs.Metrics.span "phase.parse" (fun () ->
      match Jsont.Parser.parse ?budget text with
      | Ok v -> v
      | Error e -> failwith (Format.asprintf "%a" Jsont.Parser.pp_error e))

(* documents: a single JSON value, or a stream of them (JSON lines) *)
let parse_docs_exn ?budget text =
  Obs.Metrics.span "phase.parse" (fun () ->
      match Jsont.Parser.parse_many ?budget text with
      | Ok vs -> vs
      | Error e -> failwith (Format.asprintf "%a" Jsont.Parser.pp_error e))

let input_arg =
  let doc = "Input file ('-' for stdin)." in
  Arg.(value & pos_right (-1) string [] & info [] ~docv:"FILE" ~doc)

(* ---- batch mode (shared by eval and validate) ------------------------------ *)

let files_from_arg =
  Arg.(value & opt (some string) None
       & info [ "files-from" ] ~docv:"LIST"
           ~doc:"Batch mode: read document file paths from $(docv) (one \
                 per line, '-' for stdin), process each file as one JSON \
                 document sharded across $(b,--jobs) domains, and print \
                 one 'path<TAB>result' line per file, in input order.")

let read_path_list list_path =
  read_input list_path
  |> String.split_on_char '\n'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> Array.of_list

(* Run one document's worth of work on a batch lane, folding per-document
   failures into the result line so one bad file doesn't sink the batch. *)
let batch_result f =
  match f () with
  | r -> r
  | exception Failure m -> "error: " ^ m
  | exception Obs.Budget.Exhausted r -> "error: " ^ Obs.Budget.describe r
  | exception Sys_error m -> "error: " ^ m

let print_batch paths results =
  Array.iter2 (fun p r -> Printf.printf "%s\t%s\n" p r) paths results

let last_input args = match List.rev args with [] -> "-" | x :: _ -> x

let wrap f =
  let fail m =
    prerr_endline ("error: " ^ m);
    exit 1
  in
  match f () with
  | () -> ()
  | exception (Failure m | Invalid_argument m) -> fail m
  | exception Obs.Budget.Exhausted r -> fail (Obs.Budget.describe r)

(* ---- parse ----------------------------------------------------------------- *)

let parse_cmd =
  let compact =
    Arg.(value & flag & info [ "c"; "compact" ] ~doc:"Compact output.")
  in
  let run obs compact files =
    wrap (fun () ->
        let text = read_input (last_input files) in
        let v = parse_doc_exn ~budget:obs.budget text in
        print_endline
          (if compact then Jsont.Printer.compact v else Jsont.Printer.pretty v))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and pretty-print a JSON document")
    Term.(const run $ obs_term $ compact $ input_arg)

(* ---- eval ------------------------------------------------------------------ *)

let formula_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA"
         ~doc:"A JNL formula, e.g. 'eq(.name.first, \"John\")'.")

let eval_cmd =
  let run obs formula files_from files =
    wrap (fun () ->
        let phi =
          match Jlogic.Jnl.parse formula with
          | Ok f -> f
          | Error m -> failwith ("bad formula: " ^ m)
        in
        match files_from with
        | Some list_path ->
          let paths = read_path_list list_path in
          let results =
            Par.Batch.map ~jobs:obs.jobs
              (fun path ->
                batch_result (fun () ->
                    (* direct one-pass ingestion: text straight to the
                       flat tree, then evaluate on it *)
                    let tree =
                      match
                        Jsont.Tree.of_string ~budget:(obs.fresh_budget ())
                          (read_input path)
                      with
                      | Ok t -> t
                      | Error e ->
                        failwith (Format.asprintf "%a" Jsont.Parser.pp_error e)
                    in
                    let ctx =
                      Jlogic.Jnl_eval.context ~budget:(obs.fresh_budget ())
                        ~use_index:obs.use_index tree
                    in
                    string_of_bool
                      (Jlogic.Jnl_eval.holds ctx Jsont.Tree.root phi)))
              paths
          in
          print_batch paths results
        | None ->
          let docs =
            parse_docs_exn ~budget:obs.budget (read_input (last_input files))
          in
          List.iter
            (fun doc ->
              Printf.printf "%b\t%s\n"
                (Obs.Metrics.span "phase.eval" (fun () ->
                     Jlogic.Jnl_eval.satisfies ~budget:obs.budget
                       ~use_index:obs.use_index doc phi))
                (Jsont.Printer.compact doc))
            docs)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a JNL formula at the root of each document")
    Term.(const run $ obs_term $ formula_pos $ files_from_arg $ input_arg)

(* ---- select ----------------------------------------------------------------- *)

let select_cmd =
  let path_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JSONPATH"
           ~doc:"A JSONPath expression, e.g. '\\$.store.book[*].author'.")
  in
  let run obs path files =
    wrap (fun () ->
        let doc = parse_doc_exn ~budget:obs.budget (read_input (last_input files)) in
        match
          Obs.Metrics.span "phase.eval" (fun () ->
              Jquery.Jsonpath.select ~use_index:obs.use_index doc path)
        with
        | Ok hits -> List.iter (fun v -> print_endline (Jsont.Printer.compact v)) hits
        | Error m -> failwith ("bad path: " ^ m))
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Select subdocuments with a JSONPath expression")
    Term.(const run $ obs_term $ path_pos $ input_arg)

(* ---- find ------------------------------------------------------------------- *)

let find_cmd =
  let filter_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILTER"
           ~doc:"A MongoDB-style filter document, e.g. '{\"age\": {\"\\$gte\": 18}}'.")
  in
  let project =
    Arg.(value & opt (some string) None & info [ "p"; "project" ] ~docv:"PROJ"
           ~doc:"Projection document, e.g. '{\"name\": 1}'.")
  in
  let run obs filter project files =
    wrap (fun () ->
        let f =
          match Jquery.Mongo.parse_string filter with
          | Ok f -> f
          | Error m -> failwith ("bad filter: " ^ m)
        in
        let docs = parse_docs_exn ~budget:obs.budget (read_input (last_input files)) in
        (* accept either a top-level array or a stream of documents *)
        let docs =
          match docs with [ Jsont.Value.Arr vs ] -> vs | other -> other
        in
        let hits =
          Obs.Metrics.span "phase.eval" (fun () -> Jquery.Mongo.find f docs)
        in
        let hits =
          match project with
          | None -> hits
          | Some p -> (
            match Jquery.Mongo.parse_projection (parse_doc_exn p) with
            | Ok p -> List.map (Jquery.Mongo.project p) hits
            | Error m -> failwith ("bad projection: " ^ m))
        in
        List.iter (fun v -> print_endline (Jsont.Printer.compact v)) hits)
  in
  Cmd.v
    (Cmd.info "find" ~doc:"Filter a collection with a MongoDB-style filter")
    Term.(const run $ obs_term $ filter_pos $ project $ input_arg)

(* ---- aggregate ------------------------------------------------------------- *)

let aggregate_cmd =
  let pipeline_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PIPELINE"
           ~doc:"A MongoDB-style aggregation pipeline, e.g. \
                 '[{\"\\$match\": {\"age\": {\"\\$gte\": 18}}}, \
                 {\"\\$group\": {\"_id\": \"\\$city\", \"n\": {\"\\$count\": {}}}}]'.")
  in
  let from_arg =
    Arg.(value & opt_all string []
         & info [ "from" ] ~docv:"NAME=FILE"
             ~doc:"Register a $(b,\\$lookup) collection: documents read from \
                   $(i,FILE) (JSON lines or a top-level array) joinable under \
                   $(i,NAME).  Repeatable.")
  in
  let via_jnl =
    Arg.(value & flag
         & info [ "via-jnl" ]
             ~doc:"Evaluate through the pure-JNL route (Theorem 2 matches, \
                   post-image projections, substitution unwinds) instead of \
                   the direct engine; fails unless every stage is in the \
                   navigational core.  The two routes agree byte for byte \
                   (the pipeline differential).")
  in
  let run obs pipeline froms via_jnl files_from files =
    wrap (fun () ->
        let collections =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun spec ->
              match String.index_opt spec '=' with
              | None ->
                failwith (Printf.sprintf "--from expects NAME=FILE, got %s" spec)
              | Some i ->
                let name = String.sub spec 0 i in
                let file = String.sub spec (i + 1) (String.length spec - i - 1) in
                let docs =
                  parse_docs_exn ~budget:(obs.fresh_budget ()) (read_input file)
                in
                let docs =
                  match docs with [ Jsont.Value.Arr vs ] -> vs | other -> other
                in
                Hashtbl.replace tbl name docs)
            froms;
          fun name -> Hashtbl.find_opt tbl name
        in
        let pl =
          match Jquery.Mongo_agg.parse_string ~collections pipeline with
          | Ok pl -> pl
          | Error m -> failwith ("bad pipeline: " ^ m)
        in
        let docs =
          Obs.Metrics.span "phase.parse" @@ fun () ->
          match files_from with
          | Some list_path ->
            (* one document per listed file, ingested as trees: a
               leading $match can drop a file without ever building
               its Value *)
            Array.map
              (fun p ->
                match
                  Jsont.Tree.of_string ~budget:(obs.fresh_budget ())
                    (read_input p)
                with
                | Ok t -> Jquery.Mongo_agg.doc_of_tree t
                | Error e ->
                  failwith (Format.asprintf "%s: %a" p Jsont.Parser.pp_error e))
              (read_path_list list_path)
          | None ->
            let vs =
              parse_docs_exn ~budget:obs.budget (read_input (last_input files))
            in
            (* accept either a top-level array or a stream of documents *)
            let vs =
              match vs with [ Jsont.Value.Arr vs ] -> vs | other -> other
            in
            Array.of_list (List.map Jquery.Mongo_agg.doc_of_value vs)
        in
        let out =
          if via_jnl then
            let vs =
              Array.to_list (Array.map Jquery.Mongo_agg.doc_value docs)
            in
            match
              Obs.Metrics.span "phase.eval" (fun () ->
                  Jquery.Mongo_agg.run_via_jnl pl vs)
            with
            | Ok vs -> vs
            | Error m -> failwith ("--via-jnl: " ^ m)
          else
            Obs.Metrics.span "phase.eval" @@ fun () ->
            let streaming, blocking = Jquery.Mongo_agg.split_streaming pl in
            let per_doc =
              Par.Batch.map ~jobs:obs.jobs
                (Jquery.Mongo_agg.apply_doc streaming)
                docs
            in
            let flat = List.concat (Array.to_list per_doc) in
            List.map Jquery.Mongo_agg.doc_value
              (Jquery.Mongo_agg.run_docs blocking flat)
        in
        List.iter (fun v -> print_endline (Jsont.Printer.compact v)) out)
  in
  Cmd.v
    (Cmd.info "aggregate"
       ~doc:"Run a MongoDB-style aggregation pipeline over a collection")
    Term.(const run $ obs_term $ pipeline_pos $ from_arg $ via_jnl
          $ files_from_arg $ input_arg)

(* ---- validate ----------------------------------------------------------------- *)

let validate_cmd =
  let schema_arg =
    Arg.(required & opt (some string) None & info [ "s"; "schema" ] ~docv:"FILE"
           ~doc:"JSON Schema file.")
  in
  let via_jsl =
    Arg.(value & flag & info [ "via-jsl" ]
           ~doc:"Validate through the Theorem 1 JSL translation instead of the \
                 direct validator.")
  in
  let no_compile =
    Arg.(value & flag & info [ "no-compile" ]
           ~doc:"Validate with the structural interpreter instead of compiling \
                 the schema to a plan first (the comparison baseline; results \
                 are identical).")
  in
  let stream =
    Arg.(value & flag & info [ "stream" ]
           ~doc:"Validate straight off the token stream without materializing \
                 documents (memory stays proportional to nesting depth, not \
                 document size).  With $(b,--files-from), each listed file is \
                 one streamed document read in $(b,--chunk-bytes) slices and \
                 fed to the resumable lexer; otherwise the input is NDJSON — \
                 one document per line — and each line prints \
                 'path:line<TAB>result', bad lines folding to error results \
                 without sinking their neighbours.  Requires the compiled \
                 plan.")
  in
  let chunk_bytes_arg =
    Arg.(value & opt int 65536 & info [ "chunk-bytes" ] ~docv:"N"
           ~doc:"Chunk size in bytes for $(b,--stream) input.  Verdicts, \
                 errors and output bytes are identical for every chunk size \
                 (the lexer resumes tokens split across chunk boundaries); \
                 only peak input memory and syscall count change.")
  in
  let run obs schema_file via_jsl no_compile stream chunk_bytes files_from
      files =
    wrap (fun () ->
        let schema =
          match Jschema.Parse.of_string (read_input schema_file) with
          | Ok s -> s
          | Error m -> failwith ("bad schema: " ^ m)
        in
        let jsl =
          lazy
            (Obs.Metrics.span "phase.translate" (fun () ->
                 Jschema.To_jsl.document schema))
        in
        if stream && (via_jsl || no_compile) then
          failwith
            "--stream validates through the compiled plan; drop \
             --via-jsl/--no-compile";
        if chunk_bytes < 1 then failwith "--chunk-bytes must be at least 1";
        (* The streaming checker takes the raw text of one document and
           fuses parse and validation into a single pass under a single
           budget; parse failures are rendered exactly like the
           tree-building route's so the two paths stay byte-identical. *)
        let stream_check =
          lazy
            (let plan =
               Jschema.Validate.Plan.compile ~budget:obs.budget schema
             in
             fun text ->
               match
                 Jsont.Parser.wrap (fun () ->
                     Jschema.Validate.Plan.run_stream
                       ~budget:(obs.fresh_budget ()) plan text)
               with
               | Ok ok -> ok
               | Error e ->
                 failwith (Format.asprintf "%a" Jsont.Parser.pp_error e))
        in
        (* Checker selection happens once, before any batch fan-out: the
           schema is well-formed-checked and (by default) compiled to a
           plan exactly here, never per document.  Plans are immutable,
           so the one plan is shared across all batch domains. *)
        match files_from with
        | Some list_path ->
          (* force outside the batch: lazy thunks are not domain-safe *)
          let check_path =
            if stream then begin
              (* each file is one streamed document, read in
                 [--chunk-bytes] slices and fed to the resumable lexer:
                 the document is never held in memory, and verdicts /
                 errors match the whole-string path byte for byte *)
              let plan =
                Jschema.Validate.Plan.compile ~budget:obs.budget schema
              in
              let check_channel ic =
                let chunk = Bytes.create chunk_bytes in
                let refill lx =
                  Obs.Metrics.incr "validate.feed.await";
                  let n = In_channel.input ic chunk 0 (Bytes.length chunk) in
                  if n = 0 then Jsont.Lexer.close lx
                  else begin
                    Obs.Metrics.incr "validate.feed.chunks";
                    Jsont.Lexer.feed lx chunk 0 n
                  end
                in
                let lx = Jsont.Lexer.create_feed ~refill () in
                match
                  Jsont.Parser.wrap (fun () ->
                      Jschema.Validate.Plan.run_lexer
                        ~budget:(obs.fresh_budget ()) plan lx)
                with
                | Ok ok -> ok
                | Error e ->
                  failwith (Format.asprintf "%a" Jsont.Parser.pp_error e)
              in
              fun path ->
                if path = "-" then check_channel stdin
                else In_channel.with_open_bin path check_channel
            end
            else if via_jsl then begin
              let jsl = Lazy.force jsl in
              fun path ->
                let doc =
                  parse_doc_exn ~budget:(obs.fresh_budget ()) (read_input path)
                in
                Jlogic.Jsl_rec.validates ~budget:(obs.fresh_budget ()) doc jsl
            end
            else if no_compile then begin
              let prepared = Jschema.Validate.prepare schema in
              fun path ->
                let doc =
                  parse_doc_exn ~budget:(obs.fresh_budget ()) (read_input path)
                in
                prepared ~budget:(obs.fresh_budget ()) doc
            end
            else begin
              let plan =
                Jschema.Validate.Plan.compile ~budget:obs.budget schema
              in
              fun path ->
                (* direct one-pass ingestion: text straight to the flat
                   tree, validated there — no Value.t intermediate *)
                let tree =
                  match
                    Jsont.Tree.of_string ~budget:(obs.fresh_budget ())
                      (read_input path)
                  with
                  | Ok t -> t
                  | Error e ->
                    failwith (Format.asprintf "%a" Jsont.Parser.pp_error e)
                in
                Jschema.Validate.Plan.run_tree ~budget:(obs.fresh_budget ())
                  plan tree
            end
          in
          let paths = read_path_list list_path in
          let results =
            Par.Batch.map ~jobs:obs.jobs
              (fun path ->
                batch_result (fun () ->
                    let ok =
                      Obs.Metrics.span "phase.validate" (fun () ->
                          check_path path)
                    in
                    if ok then "valid" else "INVALID"))
              paths
          in
          print_batch paths results;
          if Array.exists (fun r -> r <> "valid") results then exit 1
        | None when stream ->
          (* NDJSON: one document per line, one 'path:line<TAB>result'
             line out per document, in input order.  Sequentially the
             input is consumed line at a time — peak memory follows the
             longest line, not the file; with [--jobs] > 1 the lines
             are slurped and sharded across the pool, with identical
             output bytes. *)
          let check = Lazy.force stream_check in
          let path = last_input files in
          let check_line line =
            batch_result (fun () ->
                let ok =
                  Obs.Metrics.span "phase.validate" (fun () -> check line)
                in
                if ok then "valid" else "INVALID")
          in
          let failures = ref 0 in
          let emit lineno result =
            if result <> "valid" then incr failures;
            Printf.printf "%s:%d\t%s\n" path lineno result
          in
          if obs.jobs <= 1 then begin
            (* read [--chunk-bytes] slices and split lines by hand:
               byte-identical to [In_channel.input_line] (only '\n'
               delimits; an unterminated last line still counts), with
               peak input memory following the chunk size plus the
               longest line instead of the file *)
            let process ic =
              let chunk = Bytes.create chunk_bytes in
              let carry = Buffer.create 256 in
              let lineno = ref 0 in
              let handle line =
                incr lineno;
                if String.trim line <> "" then emit !lineno (check_line line)
              in
              let rec loop () =
                let n = In_channel.input ic chunk 0 (Bytes.length chunk) in
                if n = 0 then begin
                  if Buffer.length carry > 0 then begin
                    let line = Buffer.contents carry in
                    Buffer.clear carry;
                    handle line
                  end
                end
                else begin
                  Obs.Metrics.incr "validate.feed.chunks";
                  let start = ref 0 in
                  for i = 0 to n - 1 do
                    if Bytes.get chunk i = '\n' then begin
                      Buffer.add_subbytes carry chunk !start (i - !start);
                      let line = Buffer.contents carry in
                      Buffer.clear carry;
                      handle line;
                      start := i + 1
                    end
                  done;
                  Buffer.add_subbytes carry chunk !start (n - !start);
                  loop ()
                end
              in
              loop ()
            in
            if path = "-" then process stdin
            else In_channel.with_open_bin path process
          end
          else begin
            let lines =
              read_input path
              |> String.split_on_char '\n'
              |> List.mapi (fun i line -> (i + 1, line))
              |> List.filter (fun (_, line) -> String.trim line <> "")
              |> Array.of_list
            in
            let results =
              Par.Batch.map ~jobs:obs.jobs
                (fun (_, line) -> check_line line)
                lines
            in
            Array.iteri
              (fun i result -> emit (fst lines.(i)) result)
              results
          end;
          if !failures > 0 then exit 1
        | None ->
          let check =
            if via_jsl then fun doc ->
              Jlogic.Jsl_rec.validates ~budget:obs.budget doc (Lazy.force jsl)
            else if no_compile then begin
              let prepared = Jschema.Validate.prepare schema in
              fun doc -> prepared ~budget:obs.budget doc
            end
            else begin
              let plan =
                Jschema.Validate.Plan.compile ~budget:obs.budget schema
              in
              fun doc -> Jschema.Validate.Plan.run ~budget:obs.budget plan doc
            end
          in
          let docs =
            parse_docs_exn ~budget:obs.budget (read_input (last_input files))
          in
          let failures = ref 0 in
          List.iter
            (fun doc ->
              let ok =
                Obs.Metrics.span "phase.validate" (fun () -> check doc)
              in
              if not ok then incr failures;
              Printf.printf "%s\t%s\n"
                (if ok then "valid" else "INVALID")
                (Jsont.Printer.compact doc))
            docs;
          if !failures > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate documents against a JSON Schema")
    Term.(const run $ obs_term $ schema_arg $ via_jsl $ no_compile $ stream
          $ chunk_bytes_arg $ files_from_arg $ input_arg)

(* ---- sat --------------------------------------------------------------------- *)

let sat_cmd =
  let run obs formula =
    wrap (fun () ->
        let phi =
          match Jlogic.Jnl.parse formula with
          | Ok f -> f
          | Error m -> failwith ("bad formula: " ^ m)
        in
        match Jlogic.Jnl_sat.satisfiable ~budget:obs.budget phi with
        | Error m -> failwith ("undecidable fragment: " ^ m)
        | Ok (Jlogic.Jautomaton.Sat witness) ->
          Printf.printf "satisfiable\n%s\n" (Jsont.Printer.pretty witness)
        | Ok Jlogic.Jautomaton.Unsat -> print_endline "unsatisfiable"
        | Ok (Jlogic.Jautomaton.Unknown m) ->
          Printf.printf "unknown (%s)\n" m;
          exit 2)
  in
  Cmd.v
    (Cmd.info "sat"
       ~doc:"Decide satisfiability of a JNL formula, printing a witness document")
    Term.(const run $ obs_term $ formula_pos)

(* ---- compat ------------------------------------------------------------------ *)

let compat_cmd =
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc:"Old schema file.")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc:"New schema file.")
  in
  let run _obs old_file new_file =
    wrap (fun () ->
        let load f =
          match Jschema.Parse.of_string (read_input f) with
          | Ok s -> Jschema.To_jsl.document s
          | Error m -> failwith (f ^ ": " ^ m)
        in
        let v1 = load old_file and v2 = load new_file in
        (match (v1.Jlogic.Jsl_rec.defs, v2.Jlogic.Jsl_rec.defs) with
        | [], [] -> ()
        | _ -> failwith "compat only supports non-recursive schemas");
        match
          Jlogic.Contain.schema_compatible ~old_:v1.Jlogic.Jsl_rec.base
            ~new_:v2.Jlogic.Jsl_rec.base ()
        with
        | Jlogic.Contain.No w ->
          Printf.printf "BREAKING: valid under OLD, rejected by NEW:\n%s\n"
            (Jsont.Printer.pretty w);
          exit 1
        | Jlogic.Contain.Yes ->
          print_endline "compatible: every OLD document validates under NEW"
        | Jlogic.Contain.Inconclusive m ->
          Printf.printf "unknown (%s)\n" m;
          exit 2)
  in
  Cmd.v
    (Cmd.info "compat"
       ~doc:"Detect breaking changes between two JSON Schemas (satisfiability of \
             OLD ∧ ¬NEW)")
    Term.(const run $ obs_term $ old_arg $ new_arg)

(* ---- examples ----------------------------------------------------------------- *)

let examples_cmd =
  let schema_arg =
    Arg.(required & opt (some string) None & info [ "s"; "schema" ] ~docv:"FILE"
           ~doc:"JSON Schema file.")
  in
  let count_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N"
           ~doc:"How many example documents to generate.")
  in
  let run obs schema_file n =
    wrap (fun () ->
        let schema =
          match Jschema.Parse.of_string (read_input schema_file) with
          | Ok s -> Jschema.To_jsl.document s
          | Error m -> failwith ("bad schema: " ^ m)
        in
        if schema.Jlogic.Jsl_rec.defs <> [] then
          failwith "examples only supports non-recursive schemas";
        let ms =
          Jlogic.Jsl_sat.models ~limit:n ~budget:obs.budget
            schema.Jlogic.Jsl_rec.base
        in
        if ms = [] then begin
          print_endline "no example found (schema unsatisfiable or search exhausted)";
          exit 1
        end;
        List.iter (fun v -> print_endline (Jsont.Printer.compact v)) ms)
  in
  Cmd.v
    (Cmd.info "examples"
       ~doc:"Generate distinct example documents validating against a schema")
    Term.(const run $ obs_term $ schema_arg $ count_arg)

(* ---- infer -------------------------------------------------------------------- *)

let infer_cmd =
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Close objects and bound numbers to the observed values.")
  in
  let run obs strict files =
    wrap (fun () ->
        let docs = parse_docs_exn ~budget:obs.budget (read_input (last_input files)) in
        let docs =
          match docs with [ Jsont.Value.Arr vs ] -> vs | other -> other
        in
        if docs = [] then failwith "no example documents";
        let mode = if strict then `Strict else `Loose in
        let schema = Jschema.Infer.infer_document ~mode docs in
        print_endline (Jsont.Printer.pretty (Jschema.Schema.to_value schema)))
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer a JSON Schema from example documents (JSON lines or an array)")
    Term.(const run $ obs_term $ strict $ input_arg)

(* ---- index ------------------------------------------------------------------- *)

let index_file_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INDEX"
         ~doc:"Corpus index file (built by $(b,index build)).")

let no_verify_arg =
  Arg.(value & flag
       & info [ "no-verify" ]
           ~doc:"Skip the full body checksum at open (header, section \
                 extents and offset tables are always validated); opening \
                 cost drops to O(header + tables).")

let open_index ?verify_body path =
  match Jindex.Reader.open_ ?verify_body path with
  | Ok r -> r
  | Error m -> failwith m

let index_build_cmd =
  let corpus_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS"
           ~doc:"NDJSON corpus: one JSON document per line (blank lines \
                 skipped, like $(b,validate --stream)).")
  in
  let output_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Index file to write.")
  in
  let pos_cap_arg =
    Arg.(value & opt int Jindex.Layout.default_pos_cap
         & info [ "pos-cap" ] ~docv:"N"
             ~doc:"Materialize postings lists for array positions \
                   0..N-1; higher positions still confirm via the label \
                   column but cannot seed a postings-only query.")
  in
  let value_cap_arg =
    Arg.(value & opt int Jindex.Layout.default_value_cap
         & info [ "value-cap" ] ~docv:"N"
             ~doc:"Keep a (label, value) postings list only when it has at \
                   most N entries; longer lists are dropped (equality \
                   queries on those values fall back to filtered reparse).")
  in
  let no_values_arg =
    Arg.(value & flag
         & info [ "no-values" ]
             ~doc:"Skip the scalar-value table and value postings: smaller \
                   index, but $(b,eq) queries always fall back to filtered \
                   reparse.")
  in
  let run obs corpus output pos_cap value_cap no_values =
    wrap (fun () ->
        match
          Jindex.Writer.build ~jobs:obs.jobs ~pos_cap ~value_cap ~no_values
            ~fresh_budget:obs.fresh_budget ~corpus ~output ()
        with
        | Error m -> failwith m
        | Ok s ->
          Printf.printf
            "indexed %d docs (%d parse errors), %d nodes, %d keys, %d \
             postings, %d values, %d value postings (%d dropped)\n\
             wrote %s (%d bytes)\n"
            s.Jindex.Writer.docs s.errors s.nodes s.keys
            (s.key_postings + s.pos_postings)
            s.values s.value_postings s.value_dropped output s.bytes)
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Ingest an NDJSON corpus once and write the persistent \
             label-postings index")
    Term.(const run $ obs_term $ corpus_pos $ output_arg $ pos_cap_arg
          $ value_cap_arg $ no_values_arg)

let index_query_cmd =
  let formula_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FORMULA"
           ~doc:"A JNL formula, e.g. 'eq(.name.first, \"John\")'.")
  in
  let jsonpath_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonpath" ] ~docv:"PATH"
             ~doc:"Query with a JSONPath expression instead of a JNL \
                   formula: documents where $(docv) selects at least one \
                   node answer true.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"FILE"
             ~doc:"Override the corpus path recorded in the index (its \
                   size must still match what was indexed).")
  in
  let run obs index_file formula jsonpath corpus no_verify =
    wrap (fun () ->
        let phi =
          match (formula, jsonpath) with
          | Some f, None -> (
            match Jlogic.Jnl.parse f with
            | Ok f -> f
            | Error m -> failwith ("bad formula: " ^ m))
          | None, Some p -> (
            match Jquery.Jsonpath.parse p with
            | Ok alpha -> Jlogic.Jnl.Exists alpha
            | Error m -> failwith ("bad path: " ^ m))
          | Some _, Some _ -> failwith "give a FORMULA or --jsonpath, not both"
          | None, None -> failwith "a FORMULA or --jsonpath is required"
        in
        let r = open_index ~verify_body:(not no_verify) index_file in
        match
          Jindex.Query.run ~jobs:obs.jobs ~use_index:obs.use_index ?corpus
            ~fresh_budget:obs.fresh_budget r phi
        with
        | Error m -> failwith m
        | Ok verdicts ->
          Array.iteri
            (fun d v ->
              Printf.printf "%d\t%s\n"
                (Jindex.Reader.doc_lineno r d)
                (Jindex.Query.verdict_string v))
            verdicts)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Answer a JNL or JSONPath query over every indexed document \
             without reparsing the corpus, printing one \
             'line<TAB>verdict' per document")
    Term.(const run $ obs_term $ index_file_pos $ formula_arg $ jsonpath_arg
          $ corpus_arg $ no_verify_arg)

let index_info_cmd =
  let run _obs index_file no_verify =
    wrap (fun () ->
        let r = open_index ~verify_body:(not no_verify) index_file in
        let errors = ref 0 in
        for d = 0 to Jindex.Reader.ndocs r - 1 do
          if Jindex.Reader.doc_err r d then incr errors
        done;
        Printf.printf "index: %s (%d bytes, format %s v%d)\n"
          (Jindex.Reader.path r)
          (Jindex.Reader.file_size r)
          Jindex.Layout.magic Jindex.Layout.version;
        Printf.printf "corpus: %s (%d bytes)\n"
          (Jindex.Reader.corpus_path r)
          (Jindex.Reader.corpus_len r);
        Printf.printf "documents: %d (%d parse errors)\n"
          (Jindex.Reader.ndocs r) !errors;
        Printf.printf "nodes: %d\n" (Jindex.Reader.nnodes r);
        Printf.printf "keys: %d\n" (Jindex.Reader.nkeys r);
        Printf.printf "key postings: %d\n" (Jindex.Reader.key_entries r);
        Printf.printf "position postings: %d (lists: %d)\n"
          (Jindex.Reader.pos_entries r) (Jindex.Reader.npos r);
        if Jindex.Reader.has_values r then begin
          Printf.printf "values: %d (%d bytes)\n"
            (Jindex.Reader.nvals r) (Jindex.Reader.val_blob_len r);
          Printf.printf
            "value postings: %d (lists: %d, capped: %d, dropped entries: \
             %d, cap: %d)\n"
            (Jindex.Reader.val_entries r)
            (Jindex.Reader.npairs r)
            (Jindex.Reader.capped_pairs r)
            (Jindex.Reader.val_dropped r)
            (Jindex.Reader.value_cap r)
        end
        else Printf.printf "values: disabled (--no-values build)\n")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print an index file's header summary")
    Term.(const run $ obs_term $ index_file_pos $ no_verify_arg)

let index_cmd =
  Cmd.group
    (Cmd.info "index"
       ~doc:"Build and query a persistent structure-aware index over an \
             NDJSON corpus")
    [ index_build_cmd; index_query_cmd; index_info_cmd ]

(* ---- serve / client ---------------------------------------------------------- *)

(* endpoint flags shared by [serve] and [client]; parsed under [wrap]
   so bad values render as the usual `error: …` + exit 1 *)
let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve on (or connect to) the Unix-domain socket $(docv).")

let tcp_arg =
  Arg.(value & opt (some string) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Serve on (or connect to) TCP $(docv) (numeric host; port 0 \
                 picks a free port).")

let endpoint_of ~socket ~tcp : Jserve.Server.endpoint =
  match (socket, tcp) with
  | Some path, None -> `Unix path
  | None, Some hp -> (
    match String.rindex_opt hp ':' with
    | Some i -> (
      let host = String.sub hp 0 i in
      let host = if host = "" then "127.0.0.1" else host in
      let port = String.sub hp (i + 1) (String.length hp - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> `Tcp (host, p)
      | _ -> failwith ("bad port in --tcp " ^ hp))
    | None -> failwith ("bad --tcp " ^ hp ^ " (want HOST:PORT)"))
  | None, None -> failwith "one of --socket or --tcp is required"
  | Some _, Some _ -> failwith "--socket and --tcp are mutually exclusive"

let render_endpoint = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let serve_cmd =
  let cache_arg =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"N"
             ~doc:"Plan-cache capacity: compiled schemas kept resident, \
                   least-recently-used evicted beyond $(docv).")
  in
  let chunk_bytes_arg =
    Arg.(value & opt int 65536
         & info [ "chunk-bytes" ] ~docv:"BYTES"
             ~doc:"Socket read size; request bodies are fed to the \
                   streaming validator in slices of $(docv), so per-request \
                   memory follows nesting depth plus one chunk.")
  in
  let max_body_arg =
    Arg.(value & opt int (64 * 1024 * 1024)
         & info [ "max-body" ] ~docv:"BYTES"
             ~doc:"Largest declared schema/document body accepted.")
  in
  let run obs socket tcp cache_capacity chunk_bytes max_body_bytes =
    wrap (fun () ->
        if chunk_bytes < 1 then failwith "--chunk-bytes must be at least 1";
        let listen = endpoint_of ~socket ~tcp in
        let cfg =
          { Jserve.Server.listen; jobs = obs.jobs; cache_capacity;
            chunk_bytes; max_body_bytes; fresh_budget = obs.fresh_budget }
        in
        let srv = Jserve.Server.create cfg in
        let stop _signal = Jserve.Server.request_stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        (* the ready line carries the actual endpoint (TCP port 0 is
           resolved), so scripts can parse it instead of polling *)
        Printf.printf "serving on %s\n%!"
          (render_endpoint (Jserve.Server.endpoint srv));
        Jserve.Server.run srv;
        (* registries are domain-local: fold here so --metrics dumps
           the serve counters from the main domain's at_exit hook *)
        Jserve.Server.fold_counters srv)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the validation daemon: a socket service that compiles each \
             schema once into a cached plan and streams request documents \
             through it")
    Term.(const run $ obs_term $ socket_arg $ tcp_arg $ cache_arg
          $ chunk_bytes_arg $ max_body_arg)

let client_cmd =
  let schema_arg =
    Arg.(value & opt (some string) None
         & info [ "s"; "schema" ] ~docv:"FILE"
             ~doc:"Validate documents against this JSON Schema file.")
  in
  let inline =
    Arg.(value & flag
         & info [ "inline" ]
             ~doc:"Send the schema bytes with every request (VALIDATEI) \
                   instead of registering it once — the daemon's plan cache \
                   still deduplicates by content hash.")
  in
  let stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Treat the input as JSON lines and print one \
                   'path:line<TAB>result' per document, byte-identical to \
                   $(b,jsonlogic validate --stream).")
  in
  let index_arg =
    Arg.(value & opt (some string) None
         & info [ "index" ] ~docv:"FILE"
             ~doc:"Query the corpus index at server path $(docv) (requires \
                   --query); prints one 'line<TAB>verdict' per document, \
                   byte-identical to $(b,jsonlogic index query).")
  in
  let query_arg =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~docv:"FORMULA"
             ~doc:"The JNL formula an --index query answers.")
  in
  let ping_f =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe; prints 'pong'.")
  in
  let metrics_f =
    Arg.(value & flag
         & info [ "server-metrics" ]
             ~doc:"Print the daemon's serve counters as one JSON line.")
  in
  let flush_f =
    Arg.(value & flag
         & info [ "flush" ] ~doc:"Empty the daemon's plan cache first.")
  in
  let shutdown_f =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Ask the daemon to stop (drains in-flight requests) after \
                   any other work this invocation does.")
  in
  let run _obs socket tcp schema_file inline stream index query ping_f
      metrics_f flush_f shutdown_f files =
    wrap (fun () ->
        let endpoint = endpoint_of ~socket ~tcp in
        let c = Jserve.Client.connect endpoint in
        Fun.protect
          ~finally:(fun () -> Jserve.Client.close c)
          (fun () ->
            let unwrap = function Ok s -> s | Error m -> failwith m in
            if ping_f then print_endline (unwrap (Jserve.Client.ping c));
            if flush_f then ignore (unwrap (Jserve.Client.flush c));
            if metrics_f then
              print_endline (unwrap (Jserve.Client.metrics c));
            (match (index, query) with
            | Some idx, Some formula ->
              print_string (unwrap (Jserve.Client.index_query c ~index:idx formula))
            | Some _, None -> failwith "--index requires --query"
            | None, Some _ -> failwith "--query requires --index"
            | None, None -> ());
            (match schema_file with
            | None -> ()
            | Some sf ->
              let schema = read_input sf in
              let check =
                if inline then fun doc ->
                  Jserve.Client.validate_inline c ~schema doc
                else begin
                  let id = unwrap (Jserve.Client.put_schema c schema) in
                  fun doc -> Jserve.Client.validate c ~schema_id:id doc
                end
              in
              let verdict doc = unwrap (check doc) in
              let path = last_input files in
              if stream then begin
                (* mirror validate --stream exactly: count every line,
                   skip trim-blank ones, exit 1 on any non-valid *)
                let failures = ref 0 in
                let lineno = ref 0 in
                read_input path
                |> String.split_on_char '\n'
                |> List.iter (fun line ->
                       incr lineno;
                       if String.trim line <> "" then begin
                         let r = verdict line in
                         if r <> "valid" then incr failures;
                         Printf.printf "%s:%d\t%s\n" path !lineno r
                       end);
                if !failures > 0 then begin
                  if shutdown_f then
                    ignore (unwrap (Jserve.Client.shutdown c));
                  exit 1
                end
              end
              else begin
                let r = verdict (read_input path) in
                print_endline r;
                if r <> "valid" then begin
                  if shutdown_f then
                    ignore (unwrap (Jserve.Client.shutdown c));
                  exit 1
                end
              end);
            if shutdown_f then ignore (unwrap (Jserve.Client.shutdown c))))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running validation daemon: register schemas, validate \
             documents, read counters, or shut it down")
    Term.(const run $ obs_term $ socket_arg $ tcp_arg $ schema_arg $ inline
          $ stream $ index_arg $ query_arg $ ping_f $ metrics_f $ flush_f
          $ shutdown_f $ input_arg)

let () =
  let doc = "JSON data model, query logics and schema tools (Bourhis et al., PODS'17)" in
  let info = Cmd.info "jsonlogic" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ parse_cmd; eval_cmd; select_cmd; find_cmd; aggregate_cmd;
            validate_cmd; sat_cmd; compat_cmd; examples_cmd; infer_cmd;
            index_cmd; serve_cmd; client_cmd ]))
